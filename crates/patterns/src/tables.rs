//! Path/cycle precomputation tables — Section 5.2 of the paper.
//!
//! The PB (precomputation-based) matcher materializes, once per graph:
//!
//! * `L2` — all 2-hop cycles `u → v → u`;
//! * `L3` — all 3-hop cycles `u → v → w → u`;
//! * `C2` — all 2-hop chains `u → v → w` over distinct vertices.
//!
//! Every row stores, besides the vertex identifiers, the interaction set that
//! reaches the path's final vertex under the greedy scan (the same reduction
//! used by graph simplification, Lemma 3): for chains this *is* the maximum
//! flow profile, so pattern instances assembled from whole rows can sum
//! precomputed flows instead of re-running any flow algorithm.
//!
//! ## How the builder works
//!
//! Rows are produced by the allocation-free chain-propagation kernel
//! ([`tin_flow::chain`]) operating directly on the graph's interaction
//! slices — no per-row graph materialization, no event re-sorting, no trace.
//! Enumeration is structured around the shared prefix of `L3` and `C2`: for
//! every edge `u → v` and closing vertex `w`, the greedy reduction of
//! `u → v → w` is computed **once** and reused both as the `C2` row and as
//! the prefix that one more kernel pass extends into the `L3` row.
//!
//! A row is 32 inline bytes (fixed-size vertex array, arena offsets); the
//! delivered interactions of all rows of a table live in one shared arena,
//! so building millions of rows performs a handful of large allocations
//! instead of two small ones per row. After sorting, a per-anchor offset
//! index makes [`PathTable::rows_for`] an O(1) slice lookup.
//!
//! Eager builds fan the anchors out over the workspace worker pool
//! ([`tin_parallel::parallel_map`]); [`PathTables::for_anchors`] builds the rows
//! of selected anchors only, and [`LazyPathTables`] memoizes per-anchor
//! builds so a search that touches one anchor pays O(deg²) kernel work, not
//! O(graph). The pre-kernel builder is retained in [`crate::reference`] as a
//! cross-check oracle.
//!
//! The paper notes that on the two large datasets only the cycle tables fit
//! in memory while the chain table is feasible for Prosper; [`TablesConfig`]
//! exposes the same choice (plus a row cap as a safety valve).
//!
//! ## Incremental maintenance
//!
//! Tables are maintainable under appends: after a [`tin_graph::GraphDelta`]
//! is merged into the graph, [`PathTables::apply`] patches the tables to
//! what a from-scratch build over the grown graph would produce — without
//! doing from-scratch kernel work. The key fact is that a row's delivered
//! profile depends only on the edges along its path, so a new interaction on
//! edge `u → v` can invalidate exactly the rows whose path uses that edge:
//!
//! * as the **first** edge — rows anchored at `u`;
//! * as the **middle** edge of an `L3`/`C2` row `a → u → v (→ a)` — rows
//!   anchored at an in-neighbor `a` of `u`;
//! * as the **closing** edge of an `L2`/`L3` cycle `v → … → u → v` — rows
//!   anchored at `v`.
//!
//! [`PathTables::apply`] re-runs the chain kernel for exactly those row
//! groups — the `[u, v, *]` first-edge block, one `[a, u, v]` row per
//! in-neighbor `a`, the closing rows `[v, u]` / `[v, w, u]` — and splices
//! the fresh rows over the stale ones. The kernel work per touched edge is
//! *linear* in the endpoint degrees, never the O(deg²) of rebuilding a
//! whole anchor, which is what keeps hub-heavy appends cheap. Replaced rows
//! leave their delivered profiles behind as arena garbage, which is
//! reclaimed by an amortized compaction once it outweighs the live data.
//! [`LazyPathTables::apply`] is the cache-side analogue at its natural
//! (anchor) granularity: it evicts the anchors named by
//! [`invalidated_anchors`] (`{u, v} ∪ in(u)` per touched edge) and lets the
//! next query rebuild them.

use crate::view::TableView;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use tin_flow::ChainScratch;
use tin_graph::{AppliedDelta, Interaction, NodeId, Quantity};
use tin_parallel::{effective_threads, parallel_map};

/// Which tables to build and how large they may grow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TablesConfig {
    /// Build the 2-hop cycle table.
    pub build_l2: bool,
    /// Build the 3-hop cycle table.
    pub build_l3: bool,
    /// Build the 2-hop chain table (can be much larger than the cycle
    /// tables; the paper only affords it for Prosper Loans).
    pub build_c2: bool,
    /// Hard cap on the number of rows per table (0 = unlimited). A build
    /// that would exceed the cap stops early and marks the result
    /// [`PathTables::truncated`]; the PB matcher refuses truncated tables,
    /// so the cap is a memory safety valve, not a sampling mechanism.
    pub max_rows: usize,
}

impl Default for TablesConfig {
    fn default() -> Self {
        TablesConfig {
            build_l2: true,
            build_l3: true,
            build_c2: true,
            max_rows: 2_000_000,
        }
    }
}

/// Maximum number of vertices a table row stores (2-hop cycles use 2,
/// 3-hop cycles and 2-hop chains use 3).
const MAX_PATH_VERTICES: usize = 3;

/// A precomputed path: the vertices along it (stored inline in a fixed
/// 3-slot array — no heap allocation per row) and a slice reference into
/// the owning [`PathTable`]'s delivered-interaction arena.
///
/// For cycle rows the final (returning) vertex is not repeated. Use
/// [`PathRow::vertices`] for the vertex slice and [`PathTable::delivered`]
/// for the greedy transfers into the path's final vertex.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathRow {
    verts: [NodeId; MAX_PATH_VERTICES],
    len: u8,
    delivered_start: u32,
    delivered_len: u32,
    /// Total delivered quantity (the path's flow).
    pub flow: Quantity,
}

impl PathRow {
    /// Vertices along the path, starting vertex first.
    #[inline]
    pub fn vertices(&self) -> &[NodeId] {
        &self.verts[..self.len as usize]
    }

    /// The anchor (starting vertex) of the path.
    #[inline]
    pub fn anchor(&self) -> NodeId {
        self.verts[0]
    }
}

/// One precomputed table: compact rows, their shared delivered-interaction
/// arena, and a per-anchor offset index.
///
/// Rows are sorted by their vertex sequence (anchor first), so all rows of
/// an anchor are contiguous; [`PathTable::rows_for`] returns that slice via
/// the offset index without any searching.
#[derive(Debug, Clone, Default)]
pub struct PathTable {
    rows: Vec<PathRow>,
    arena: Vec<Interaction>,
    /// Prefix offsets over the anchor range that actually has rows: rows of
    /// anchor `a` (with `first_anchor ≤ a.index()`) live at
    /// `rows[offsets[a - first_anchor] .. offsets[a - first_anchor + 1]]`.
    /// Spanning only the populated range keeps anchor-lazy builds O(1)
    /// memory instead of O(node count) per table.
    offsets: Vec<u32>,
    first_anchor: usize,
    /// Arena entries orphaned by incremental patches ([`PathTable::delivered`]
    /// never reads them); compacted away once they outweigh the live data.
    dead: usize,
}

impl PathTable {
    /// All rows, sorted by vertex sequence.
    #[inline]
    pub fn rows(&self) -> &[PathRow] {
        &self.rows
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterates over the rows in sorted order.
    pub fn iter(&self) -> std::slice::Iter<'_, PathRow> {
        self.rows.iter()
    }

    /// Greedy transfers into the final vertex of `row`: `(time, quantity)`
    /// pairs in chronological order.
    ///
    /// `row` must belong to this table (rows carry offsets into their own
    /// table's arena).
    #[inline]
    pub fn delivered(&self, row: &PathRow) -> &[Interaction] {
        let start = row.delivered_start as usize;
        &self.arena[start..start + row.delivered_len as usize]
    }

    /// Number of delivered-interaction arena entries, live and garbage
    /// together — with [`PathTable::garbage_len`], the observable the
    /// sliding-window experiments (and the churn regression test) use to
    /// check that a steady window holds steady-state memory.
    #[inline]
    pub fn arena_len(&self) -> usize {
        self.arena.len()
    }

    /// Arena entries orphaned by incremental patches and not yet compacted
    /// away. Bounded by the live data (amortized compaction triggers once
    /// garbage outweighs it), so `arena_len - garbage_len` is never smaller
    /// than half the arena.
    #[inline]
    pub fn garbage_len(&self) -> usize {
        self.dead
    }

    /// Rows anchored at `anchor`, as an O(1) indexed slice.
    pub fn rows_for(&self, anchor: NodeId) -> &[PathRow] {
        let a = anchor.index();
        if a < self.first_anchor || a - self.first_anchor + 1 >= self.offsets.len() {
            return &[];
        }
        let i = a - self.first_anchor;
        &self.rows[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Anchors that have at least one row, in ascending order.
    pub fn anchors(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.offsets
            .windows(2)
            .enumerate()
            .filter(|(_, w)| w[0] < w[1])
            .map(|(i, _)| NodeId::from_index(self.first_anchor + i))
    }

    /// The row range of `anchor` as indices into [`PathTable::rows`] — an
    /// empty `start..start` range at the sorted insertion point when the
    /// anchor has no rows. O(1) inside the populated anchor span, one binary
    /// search outside it.
    fn anchor_range(&self, anchor: NodeId) -> std::ops::Range<usize> {
        let a = anchor.index();
        if a >= self.first_anchor && a - self.first_anchor + 1 < self.offsets.len() {
            let i = a - self.first_anchor;
            return self.offsets[i] as usize..self.offsets[i + 1] as usize;
        }
        let at = self.rows.partition_point(|r| r.anchor() < anchor);
        debug_assert!(self.rows.get(at).is_none_or(|r| r.anchor() > anchor));
        at..at
    }

    /// The row range matching `key` (rows whose vertex sequence starts with
    /// the key's prefix) — an empty range at the sorted insertion point when
    /// no row matches. One binary search within the key's anchor range.
    fn key_range(&self, key: &PatchKey) -> std::ops::Range<usize> {
        let anchor = self.anchor_range(key.verts[0]);
        let prefix = &key.verts[..key.len as usize];
        let rows = &self.rows[anchor.clone()];
        let start = rows.partition_point(|r| {
            let n = prefix.len().min(r.vertices().len());
            &r.vertices()[..n] < prefix
        });
        let end = start
            + rows[start..].partition_point(|r| {
                let n = prefix.len().min(r.vertices().len());
                &r.vertices()[..n] <= prefix
            });
        anchor.start + start..anchor.start + end
    }

    /// Replaces the row groups named by `keys` (ascending, deduplicated,
    /// non-overlapping) with the matching rows of `repl_rows` (sorted by
    /// vertex sequence; every row must match exactly one key), appending
    /// `repl_arena` to this table's arena. Stale profiles become garbage,
    /// tracked in [`PathTable::dead`] and compacted away once they exceed
    /// the live data — so long-running streams do amortized O(1) arena work
    /// per replaced row instead of an O(table) rebuild per batch.
    fn patch_keys(&mut self, keys: &[PatchKey], repl_rows: &[PathRow], repl_arena: &[Interaction]) {
        // The shifted replacement offsets must stay within u32; compact
        // eagerly if garbage alone would push them over.
        if self.arena.len() + repl_arena.len() > u32::MAX as usize {
            self.compact();
        }
        let base = u32::try_from(self.arena.len()).expect("patched arena exceeds u32 offsets");
        self.arena.extend_from_slice(repl_arena);
        let mut out = Vec::with_capacity(self.rows.len() + repl_rows.len());
        let mut prev = 0usize;
        let mut next_repl = 0usize;
        for key in keys {
            let range = self.key_range(key);
            debug_assert!(range.start >= prev, "patch keys must be ascending");
            out.extend_from_slice(&self.rows[prev..range.start]);
            self.dead += self.rows[range.clone()]
                .iter()
                .map(|r| r.delivered_len as usize)
                .sum::<usize>();
            let prefix = &key.verts[..key.len as usize];
            while let Some(r) = repl_rows.get(next_repl) {
                let n = prefix.len().min(r.vertices().len());
                if &r.vertices()[..n] != prefix {
                    break;
                }
                let mut r = *r;
                r.delivered_start = base
                    .checked_add(r.delivered_start)
                    .expect("patched arena exceeds u32 offsets");
                out.push(r);
                next_repl += 1;
            }
            prev = range.end;
        }
        out.extend_from_slice(&self.rows[prev..]);
        debug_assert_eq!(
            next_repl,
            repl_rows.len(),
            "every replacement row must match a key"
        );
        self.rows = out;
        if self.dead > self.arena.len() - self.dead {
            self.compact();
        }
        self.build_offsets();
    }

    /// Rewrites the arena keeping only the profiles live rows reference.
    fn compact(&mut self) {
        let mut arena = Vec::with_capacity(self.arena.len() - self.dead);
        for row in &mut self.rows {
            let start = row.delivered_start as usize;
            let end = start + row.delivered_len as usize;
            row.delivered_start =
                u32::try_from(arena.len()).expect("compacted arena exceeds u32 offsets");
            arena.extend_from_slice(&self.arena[start..end]);
        }
        self.arena = arena;
        self.dead = 0;
    }

    /// Reassembles a table from externally stored row contents: for each row
    /// its vertex sequence, flow, and delivered profile, in sorted order.
    ///
    /// This is the snapshot-restore seam: a dumped table round-trips through
    /// `(row.vertices(), row.flow, table.delivered(&row))` triples and comes
    /// back with a freshly packed arena (no garbage) and a rebuilt offset
    /// index — row-identical to the original under
    /// [`PathTables::first_row_divergence`], which never inspects arena
    /// layout.
    ///
    /// Returns a message describing the first malformed row when the input
    /// is not a valid table: vertex sequences must have 2 or 3 vertices and
    /// be strictly ascending (every row unique, sorted), and the total
    /// delivered profile length must fit the arena's `u32` offsets.
    pub fn from_row_contents<'a, I>(contents: I) -> Result<PathTable, String>
    where
        I: IntoIterator<Item = (&'a [NodeId], Quantity, &'a [Interaction])>,
    {
        let iter = contents.into_iter();
        let mut builder = PathTableBuilder::with_capacity(iter.size_hint().0);
        for (verts, flow, delivered) in iter {
            builder.push(verts, flow, delivered)?;
        }
        Ok(builder.finish())
    }

    /// Builds the per-anchor offset index; `rows` must already be sorted by
    /// vertex sequence (anchor first), so the populated anchor range is
    /// `[first row's anchor, last row's anchor]`.
    fn build_offsets(&mut self) {
        let (Some(first), Some(last)) = (self.rows.first(), self.rows.last()) else {
            self.offsets = Vec::new();
            self.first_anchor = 0;
            return;
        };
        let first = first.anchor().index();
        let span = last.anchor().index() - first + 1;
        let mut offsets = vec![0u32; span + 1];
        for row in &self.rows {
            offsets[row.anchor().index() - first + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        self.offsets = offsets;
        self.first_anchor = first;
    }
}

impl<'a> IntoIterator for &'a PathTable {
    type Item = &'a PathRow;
    type IntoIter = std::slice::Iter<'a, PathRow>;

    fn into_iter(self) -> Self::IntoIter {
        self.rows.iter()
    }
}

/// Push-based construction of a [`PathTable`] from externally stored row
/// contents — the streaming form of [`PathTable::from_row_contents`], for
/// callers (snapshot restore) that decode rows one at a time and must not
/// buffer the whole table twice.
///
/// Rows must arrive in strictly ascending vertex-sequence order; every
/// [`PathTableBuilder::push`] validates against the previous row, and
/// [`PathTableBuilder::finish`] builds the per-anchor offset index.
#[derive(Debug, Default)]
pub struct PathTableBuilder {
    table: PathTable,
}

impl PathTableBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        PathTableBuilder::default()
    }

    /// An empty builder with row capacity reserved (the arena grows on
    /// demand — delivered-profile lengths are not known up front).
    pub fn with_capacity(rows: usize) -> Self {
        let mut table = PathTable::default();
        table.rows.reserve(rows);
        PathTableBuilder { table }
    }

    /// Appends one row: its vertex sequence, flow, and delivered profile.
    ///
    /// Returns a message describing the problem when the row is malformed:
    /// vertex sequences must have 2 or 3 vertices and be strictly after the
    /// previous row's (every row unique, sorted), and the total delivered
    /// length must fit the arena's `u32` offsets.
    pub fn push(
        &mut self,
        verts: &[NodeId],
        flow: Quantity,
        delivered: &[Interaction],
    ) -> Result<(), String> {
        self.push_profile(verts, flow, delivered.iter().copied())
    }

    /// Like [`PathTableBuilder::push`], but the delivered profile is drained
    /// from an iterator straight into the arena — no intermediate buffer.
    /// This is the snapshot-restore fast path: at standard scale the C2
    /// arena is megabytes, and a per-row bounce buffer doubles the copy.
    pub fn push_profile<I>(
        &mut self,
        verts: &[NodeId],
        flow: Quantity,
        delivered: I,
    ) -> Result<(), String>
    where
        I: ExactSizeIterator<Item = Interaction>,
    {
        let table = &mut self.table;
        let i = table.rows.len();
        if verts.len() < 2 || verts.len() > MAX_PATH_VERTICES {
            return Err(format!(
                "row {i} has {} vertices (expected 2 or 3)",
                verts.len()
            ));
        }
        if let Some(prev) = table.rows.last() {
            if prev.vertices() >= verts {
                return Err(format!(
                    "row {i} ({verts:?}) is not strictly after its predecessor ({:?})",
                    prev.vertices()
                ));
            }
        }
        let overflow = || format!("row {i} overflows the arena's u32 offsets");
        if u32::try_from(delivered.len()).is_err() {
            return Err(format!("row {i} delivered profile overflows u32"));
        }
        let start_at = table.arena.len();
        let start = u32::try_from(start_at).map_err(|_| overflow())?;
        table.arena.extend(delivered);
        // Measure what actually landed rather than trusting the iterator's
        // size hint; a lying `ExactSizeIterator` must not corrupt offsets.
        let landed = table.arena.len() - start_at;
        let len = match u32::try_from(landed)
            .ok()
            .filter(|l| start.checked_add(*l).is_some())
        {
            Some(len) => len,
            None => {
                table.arena.truncate(start_at);
                return Err(overflow());
            }
        };
        let mut slots = [NodeId::from_index(0); MAX_PATH_VERTICES];
        slots[..verts.len()].copy_from_slice(verts);
        table.rows.push(PathRow {
            verts: slots,
            len: verts.len() as u8,
            delivered_start: start,
            delivered_len: len,
            flow,
        });
        Ok(())
    }

    /// Reserves arena capacity for a known total delivered length, so a
    /// restore with a size header allocates once instead of growing row by
    /// row.
    pub fn reserve_arena(&mut self, interactions: usize) {
        self.table.arena.reserve(interactions);
    }

    /// Rows pushed so far.
    pub fn len(&self) -> usize {
        self.table.rows.len()
    }

    /// Whether no rows have been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.table.rows.is_empty()
    }

    /// Builds the offset index and returns the finished table.
    pub fn finish(mut self) -> PathTable {
        self.table.build_offsets();
        self.table
    }
}

/// The precomputed tables for one graph.
#[derive(Debug, Clone, Default)]
pub struct PathTables {
    /// 2-hop cycles `u → v → u`, sorted by anchor `u`.
    pub l2: PathTable,
    /// 3-hop cycles `u → v → w → u`, sorted by anchor `u`.
    pub l3: PathTable,
    /// 2-hop chains `u → v → w`, sorted by start `u`.
    pub c2: PathTable,
    /// Whether any table hit the configured row cap (results would be
    /// partial; the PB matcher refuses to use a truncated table).
    pub truncated: bool,
    /// The configuration the tables were built with — remembered so
    /// [`PathTables::apply`] re-runs the kernel under identical settings.
    config: TablesConfig,
    /// Whether the tables cover only a selected anchor subset
    /// ([`PathTables::for_anchors`]); such tables refuse incremental
    /// maintenance, which is defined against full coverage.
    partial: bool,
    kernel_calls: u64,
}

/// What one [`PathTables::apply`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TablesUpdate {
    /// Row groups (edge blocks `[u, v, *]`, single cycle rows, single path
    /// rows) recomputed by this update — the invalidation set.
    pub refreshed_groups: usize,
    /// Whether the update fell back to a full rebuild (truncated input
    /// tables, or the patched tables crossed the row cap).
    pub rebuilt: bool,
    /// Chain-kernel passes this update performed.
    pub kernel_calls: u64,
}

/// Names one group of table rows for [`PathTable::patch_keys`]: the rows
/// whose vertex sequence starts with `verts[..len]`. A 2-vertex key is an
/// exact cycle row in `L2` and a whole `[a, b, *]` block in `L3`/`C2`; a
/// 3-vertex key is a single row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct PatchKey {
    verts: [NodeId; 3],
    len: u8,
}

impl PatchKey {
    fn pair(a: NodeId, b: NodeId) -> Self {
        PatchKey {
            verts: [a, b, NodeId::from_index(0)],
            len: 2,
        }
    }

    fn triple(verts: [NodeId; 3]) -> Self {
        PatchKey { verts, len: 3 }
    }
}

impl PathTables {
    /// Builds the tables for `graph` (any [`TableView`]: the serial
    /// [`tin_graph::TemporalGraph`] or the sharded
    /// [`tin_graph::ShardedGraph`]), fanning the anchors out over the
    /// worker pool when the graph is large enough to amortize it.
    pub fn build<G: TableView>(graph: &G, config: &TablesConfig) -> Self {
        let anchors: Vec<NodeId> = all_anchors(graph);
        build_for_anchor_list(graph, config, &anchors, auto_parallel(graph))
    }

    /// Builds the tables on the calling thread only (benchmark baseline and
    /// deterministic small-graph path).
    pub fn build_serial<G: TableView>(graph: &G, config: &TablesConfig) -> Self {
        let anchors: Vec<NodeId> = all_anchors(graph);
        build_for_anchor_list(graph, config, &anchors, false)
    }

    /// Builds the tables on the worker pool unconditionally.
    pub fn build_parallel<G: TableView>(graph: &G, config: &TablesConfig) -> Self {
        let anchors: Vec<NodeId> = all_anchors(graph);
        build_for_anchor_list(graph, config, &anchors, true)
    }

    /// Builds the rows anchored at `anchors` only (anchor-lazy mode):
    /// kernel work is proportional to the listed anchors' neighborhoods,
    /// not to the whole graph. Duplicate anchors are deduplicated.
    ///
    /// The result is a regular [`PathTables`] whose tables simply contain no
    /// rows for other anchors, so every downstream consumer (joins, relaxed
    /// searches) works unchanged on the subset.
    pub fn for_anchors<G: TableView>(graph: &G, config: &TablesConfig, anchors: &[NodeId]) -> Self {
        let mut picked: Vec<NodeId> = anchors
            .iter()
            .copied()
            .filter(|a| a.index() < graph.node_count())
            .collect();
        picked.sort_unstable();
        picked.dedup();
        let mut tables = build_for_anchor_list(graph, config, &picked, auto_parallel(graph));
        tables.partial = true;
        tables
    }

    /// Rows of `table` anchored at `anchor` (kept as a thin wrapper over the
    /// table's per-anchor offset index for source compatibility).
    pub fn rows_for(table: &PathTable, anchor: NodeId) -> &[PathRow] {
        table.rows_for(anchor)
    }

    /// Total number of rows across all tables.
    pub fn row_count(&self) -> usize {
        self.l2.len() + self.l3.len() + self.c2.len()
    }

    /// Number of chain-propagation kernel passes the build performed
    /// (anchor-lazy builds do anchor-local work; tests assert on this).
    pub fn kernel_calls(&self) -> u64 {
        self.kernel_calls
    }

    /// The configuration the tables were built with.
    pub fn config(&self) -> &TablesConfig {
        &self.config
    }

    /// Whether the tables cover only a selected anchor subset
    /// ([`PathTables::for_anchors`]). Partial tables refuse
    /// [`PathTables::apply`] and cannot be snapshotted meaningfully — a
    /// restore would silently serve subset coverage as full coverage.
    pub fn is_partial(&self) -> bool {
        self.partial
    }

    /// Reassembles a full-coverage table set from stored parts: the build
    /// configuration, the truncation verdict, and the three tables (see
    /// [`PathTable::from_row_contents`] for the per-table seam).
    ///
    /// The result reports zero [`PathTables::kernel_calls`] — that counter
    /// is build telemetry, not table content, and restarts from the restore.
    pub fn from_stored_parts(
        config: TablesConfig,
        truncated: bool,
        l2: PathTable,
        l3: PathTable,
        c2: PathTable,
    ) -> Self {
        PathTables {
            l2,
            l3,
            c2,
            truncated,
            config,
            partial: false,
            kernel_calls: 0,
        }
    }

    /// Compares two table sets row for row (truncation verdict, vertex
    /// sequences, flows, delivered profiles) and describes the first
    /// divergence, or returns `None` when they are row-identical. Arena
    /// layout and garbage are *not* compared — only observable row content.
    ///
    /// This is the exactness check of incremental maintenance: after
    /// [`PathTables::apply`], `self.first_row_divergence(&rebuilt)` against
    /// a from-scratch build must be `None` (the streaming experiment and
    /// the proptests both assert through this one definition).
    pub fn first_row_divergence(&self, other: &PathTables) -> Option<String> {
        if self.truncated != other.truncated {
            return Some(format!(
                "truncation verdicts differ ({} vs {})",
                self.truncated, other.truncated
            ));
        }
        for (label, a, b) in [
            ("L2", &self.l2, &other.l2),
            ("L3", &self.l3, &other.l3),
            ("C2", &self.c2, &other.c2),
        ] {
            if a.len() != b.len() {
                return Some(format!(
                    "{label}: row counts differ ({} vs {})",
                    a.len(),
                    b.len()
                ));
            }
            for (i, (ra, rb)) in a.iter().zip(b.iter()).enumerate() {
                if ra.vertices() != rb.vertices() {
                    return Some(format!(
                        "{label}: row {i} vertices differ ({:?} vs {:?})",
                        ra.vertices(),
                        rb.vertices()
                    ));
                }
                if ra.flow != rb.flow {
                    return Some(format!(
                        "{label}: row {i} ({:?}) flows differ ({} vs {})",
                        ra.vertices(),
                        ra.flow,
                        rb.flow
                    ));
                }
                if a.delivered(ra) != b.delivered(rb) {
                    return Some(format!(
                        "{label}: row {i} ({:?}) delivered profiles differ",
                        ra.vertices()
                    ));
                }
            }
        }
        None
    }

    /// Incrementally maintains the tables after `graph` absorbed a delta
    /// (`applied` is what [`tin_graph::TemporalGraph::apply`] returned for
    /// it). Afterwards the tables are row-identical to a from-scratch
    /// [`PathTables::build`] over the changed graph — the workspace
    /// proptests pin this down — but the *kernel* only revisits the row
    /// groups the delta can invalidate (see the [module docs](self)), so
    /// flow recomputation scales with the changed edges' endpoint degrees,
    /// not with the graph. (Splicing the fresh rows in still rewrites each
    /// table's row vector and offset index — a linear memcpy over compact
    /// 32-byte rows with no kernel work, which the `experiments stream`
    /// measurements show is dwarfed by the avoided rebuild.)
    ///
    /// Removals are handled symmetrically: a sliding-window delta's
    /// evictions ([`AppliedDelta::shrunk_edges`] /
    /// [`AppliedDelta::removed_edges`]) invalidate exactly the same row
    /// groups an addition on the same edge would, and a group whose edge
    /// was tombstoned simply recomputes to zero rows — the splice deletes
    /// it, feeding the arena's garbage accounting and (eventually) its
    /// amortized compaction.
    ///
    /// Apply updates in the same order the graph applied the deltas; each
    /// call must see the graph state right after its delta.
    ///
    /// Truncated tables (and patches that cross the row cap, in either
    /// direction — growth past the cap, or shrinkage of previously capped
    /// content) fall back to a full rebuild so the row-cap semantics stay
    /// exactly those of a fresh build.
    ///
    /// # Panics
    /// Panics on tables built with [`PathTables::for_anchors`]: a fixed
    /// anchor subset cannot be patched meaningfully (the patch would mix
    /// subset and full coverage) — use [`LazyPathTables`] for incrementally
    /// maintained partial coverage.
    pub fn apply<G: TableView>(&mut self, graph: &G, applied: &AppliedDelta) -> TablesUpdate {
        assert!(
            !self.partial,
            "PathTables::apply on a for_anchors subset would silently mix subset and \
             full coverage; use LazyPathTables for maintained partial coverage"
        );
        let config = self.config;
        if self.truncated {
            return self.rebuild(graph, &config, 0);
        }
        // Collect → recompute → splice; the three phases are split out so
        // the shard-parallel maintainer ([`crate::sharded::ShardedTables`])
        // can collect once globally and run the latter two per shard.
        let groups = collect_groups(graph, &config, applied);
        let refreshed_groups = groups.len();
        let mut scratch = ChainScratch::new();
        let bufs = recompute_groups(graph, &config, &groups, &mut scratch);
        self.splice_groups(&groups, &bufs);

        let kernel_calls = scratch.kernel_calls();
        if config.max_rows > 0 && self.over_cap(config.max_rows) {
            return self.rebuild(graph, &config, kernel_calls);
        }
        self.kernel_calls += kernel_calls;
        TablesUpdate {
            refreshed_groups,
            rebuilt: false,
            kernel_calls,
        }
    }

    /// Splices freshly recomputed rows ([`recompute_groups`]) over the stale
    /// row groups ([`collect_groups`]), table by table.
    pub(crate) fn splice_groups(&mut self, groups: &InvalidationGroups, bufs: &[TableBuf; 3]) {
        let config = self.config;
        let pair_key = |&(a, b): &(NodeId, NodeId)| PatchKey::pair(a, b);
        if config.build_l2 {
            let mut keys: Vec<PatchKey> = groups.blocks.iter().map(pair_key).collect();
            keys.extend(groups.l2_extra.iter().map(pair_key));
            keys.sort_unstable();
            self.l2.patch_keys(&keys, &bufs[L2].rows, &bufs[L2].arena);
        }
        if config.build_l3 || config.build_c2 {
            let mut keys: Vec<PatchKey> = groups.blocks.iter().map(pair_key).collect();
            keys.extend(groups.points.iter().map(|&p| PatchKey::triple(p)));
            keys.sort_unstable();
            if config.build_l3 {
                self.l3.patch_keys(&keys, &bufs[L3].rows, &bufs[L3].arena);
            }
            if config.build_c2 {
                self.c2.patch_keys(&keys, &bufs[C2].rows, &bufs[C2].arena);
            }
        }
    }

    /// Whether any built table exceeds `cap` rows.
    pub(crate) fn over_cap(&self, cap: usize) -> bool {
        [&self.l2, &self.l3, &self.c2].iter().any(|t| t.len() > cap)
    }

    /// Folds externally performed kernel passes into the counter (the
    /// sharded maintainer recomputes on its own scratches).
    pub(crate) fn add_kernel_calls(&mut self, calls: u64) {
        self.kernel_calls += calls;
    }

    /// Full-rebuild fallback of [`PathTables::apply`]; `wasted` kernel
    /// passes were already spent on an abandoned incremental attempt.
    fn rebuild<G: TableView>(
        &mut self,
        graph: &G,
        config: &TablesConfig,
        wasted: u64,
    ) -> TablesUpdate {
        let prior = self.kernel_calls;
        *self = PathTables::build(graph, config);
        let this_update = self.kernel_calls + wasted;
        self.kernel_calls = prior + this_update;
        TablesUpdate {
            refreshed_groups: graph.node_count(),
            rebuilt: true,
            kernel_calls: this_update,
        }
    }
}

/// The anchors whose `L2`/`L3`/`C2` rows a batch of changes can invalidate:
/// for every changed edge `u → v` — appended to, shrunk by eviction, or
/// tombstoned — the set `{u, v} ∪ in(u)` (deduplicated, ascending). `graph`
/// must be the *post-apply* graph.
///
/// This set is exact, for additions and removals alike: a table row's
/// delivered profiles depend only on the edges along its path, and a path
/// through `u → v` starts at `u` (first edge), at an in-neighbor of `u`
/// (middle edge), or at `v` (closing edge of a cycle). Rows of any other
/// anchor cannot reference the changed edge and stay valid verbatim.
/// (Tombstones keep their endpoints, which is what makes the removed edges
/// addressable here; an in-neighbor edge removed by the same delta is
/// itself a changed edge and contributes its own anchors.)
pub fn invalidated_anchors<G: TableView>(graph: &G, applied: &AppliedDelta) -> Vec<NodeId> {
    let mut anchors = Vec::new();
    for e in applied.changed_edges() {
        let (src, dst) = graph.endpoints(e);
        anchors.push(src);
        anchors.push(dst);
        graph.for_each_in_source(src, &mut |a| anchors.push(a));
    }
    anchors.sort_unstable();
    anchors.dedup();
    anchors
}

/// Every vertex id of `graph`, as the ascending anchor list of a full build.
fn all_anchors<G: TableView>(graph: &G) -> Vec<NodeId> {
    (0..graph.node_count()).map(NodeId::from_index).collect()
}

/// Eager builds go parallel only when the graph plausibly amortizes the
/// thread-pool round trip.
fn auto_parallel<G: TableView>(graph: &G) -> bool {
    graph.node_count() >= 512 && effective_threads() > 1
}

/// The row groups one applied delta invalidates, as named by
/// [`collect_groups`]: `blocks` are whole `[u, v, *]` first-edge blocks,
/// `l2_extra` are closing `[v, u]` cycle rows whose block is not already
/// collected, `points` are single `[a, b, c]` rows. All three lists are
/// ascending, deduplicated and non-overlapping, which is what
/// [`PathTables::splice_groups`] requires of its patch keys.
#[derive(Debug, Default)]
pub(crate) struct InvalidationGroups {
    pub(crate) blocks: Vec<(NodeId, NodeId)>,
    pub(crate) l2_extra: Vec<(NodeId, NodeId)>,
    pub(crate) points: Vec<[NodeId; 3]>,
}

impl InvalidationGroups {
    /// Total number of row groups across the three kinds.
    pub(crate) fn len(&self) -> usize {
        self.blocks.len() + self.l2_extra.len() + self.points.len()
    }

    /// Whether the delta invalidated nothing.
    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Collects the row groups a delta can invalidate — only for the tables
/// `config` actually builds. For each changed edge `u → v` (touched by
/// additions, shrunk by eviction, or tombstoned — the sets are exactly
/// symmetric): the `[u, v, *]` block (first-edge rows), the point rows
/// `[a, u, v]` per in-neighbor `a` of `u` (middle-edge rows), and the
/// closing-edge rows `[v, u]` / `[v, w, u]`. This is linear in the endpoint
/// degrees — never the O(deg²) of a whole anchor rebuild.
///
/// Tombstones keep their endpoints, so the keys of a removed edge are
/// collected the same way; its neighborhood walks run over the
/// post-eviction adjacency, where companion edges removed by the same delta
/// are already gone — those contribute their own keys through their own
/// `changed_edges` entries.
pub(crate) fn collect_groups<G: TableView>(
    graph: &G,
    config: &TablesConfig,
    applied: &AppliedDelta,
) -> InvalidationGroups {
    let mut blocks: Vec<(NodeId, NodeId)> = Vec::new();
    let mut l2_extra: Vec<(NodeId, NodeId)> = Vec::new();
    let mut points: Vec<[NodeId; 3]> = Vec::new();
    for e in applied.changed_edges() {
        let (u, v) = graph.endpoints(e);
        blocks.push((u, v));
        if config.build_l3 || config.build_c2 {
            graph.for_each_in_source(u, &mut |a| {
                if a != v && a != u {
                    points.push([a, u, v]);
                }
            });
        }
        if config.build_l2 && graph.has_pair(v, u) {
            l2_extra.push((v, u));
        }
        if config.build_l3 {
            graph.for_each_out(v, &mut |w, _| {
                if w != u && w != v && graph.has_pair(w, u) {
                    points.push([v, w, u]);
                }
                true
            });
        }
    }
    blocks.sort_unstable();
    blocks.dedup();
    l2_extra.sort_unstable();
    l2_extra.dedup();
    l2_extra.retain(|k| blocks.binary_search(k).is_err());
    points.sort_unstable();
    points.dedup();
    points.retain(|p| blocks.binary_search(&(p[0], p[1])).is_err());
    InvalidationGroups {
        blocks,
        l2_extra,
        points,
    }
}

/// Re-runs the chain kernel for exactly the groups in `groups`, returning
/// per-table replacement buffers with rows sorted by vertex sequence —
/// ready for [`PathTables::splice_groups`].
pub(crate) fn recompute_groups<G: TableView>(
    graph: &G,
    config: &TablesConfig,
    groups: &InvalidationGroups,
    scratch: &mut ChainScratch,
) -> [TableBuf; 3] {
    let mut bufs: [TableBuf; 3] = Default::default();
    for &(u, v) in &groups.blocks {
        // A `None` here means the edge was evicted (or an added edge whose
        // every interaction immediately expired): the block keeps its key
        // but contributes no replacement rows, so the patch deletes the
        // group — removal is just "recompute to empty".
        let Some(first) = graph.pair(u, v) else {
            continue;
        };
        enumerate_first_edge(
            graph,
            config,
            u,
            v,
            first,
            scratch,
            &mut |table, verts, len, delivered, flow| {
                bufs[table].push(verts, len, delivered, flow);
                true
            },
        );
    }
    if config.build_l2 {
        for &(a, b) in &groups.l2_extra {
            // `(a, b)` was seen live when the key was collected; the
            // changed edge `(b, a)` may have been evicted, in which case
            // the cycle row `[a, b]` is deleted by the empty recompute.
            let first = graph.pair(a, b).expect("checked at collection");
            let Some(back) = graph.pair(b, a) else {
                continue;
            };
            let flow = scratch.reduce_pair(first, back);
            bufs[L2].push([a, b, a], 2, scratch.delivered(), flow);
        }
    }
    if config.build_l3 || config.build_c2 {
        for &[a, b, c] in &groups.points {
            // Either hop can be the changed edge, and a changed edge can
            // be a tombstone: a dead hop deletes the point's rows.
            let Some(first) = graph.pair(a, b) else {
                continue;
            };
            let Some(mid) = graph.pair(b, c) else {
                continue;
            };
            let mid_flow = scratch.reduce_pair(first, mid);
            if config.build_c2 {
                bufs[C2].push([a, b, c], 3, scratch.delivered(), mid_flow);
            }
            if config.build_l3 {
                if let Some(close) = graph.pair(c, a) {
                    let flow = scratch.extend_through(close);
                    bufs[L3].push([a, b, c], 3, scratch.extended_delivered(), flow);
                }
            }
        }
    }
    // Enumeration order is arbitrary; patching consumes replacement rows
    // in key order.
    for buf in &mut bufs {
        buf.rows
            .sort_unstable_by(|a, b| a.vertices().cmp(b.vertices()));
    }
    bufs
}

/// Index of each table in the per-build bookkeeping arrays.
const L2: usize = 0;
const L3: usize = 1;
const C2: usize = 2;

/// Rows plus arena for one table, as produced by one worker chunk.
#[derive(Default)]
pub(crate) struct TableBuf {
    rows: Vec<PathRow>,
    arena: Vec<Interaction>,
}

impl TableBuf {
    fn push(
        &mut self,
        verts: [NodeId; MAX_PATH_VERTICES],
        len: u8,
        delivered: &[Interaction],
        flow: Quantity,
    ) {
        let start = u32::try_from(self.arena.len()).expect("delivered arena exceeds u32 offsets");
        let dlen = u32::try_from(delivered.len()).expect("delivered profile exceeds u32 length");
        self.arena.extend_from_slice(delivered);
        self.rows.push(PathRow {
            verts,
            len,
            delivered_start: start,
            delivered_len: dlen,
            flow,
        });
    }
}

/// Shared row-cap accounting across worker chunks. `published` counts rows
/// already handed over by completed anchors, so a chunk can tell (up to
/// publish lag) whether a new row would exceed the cap.
struct CapState {
    cap: usize,
    published: [AtomicUsize; 3],
}

/// One worker's output: per-table buffers plus cap/kernel bookkeeping.
#[derive(Default)]
struct ChunkOut {
    tables: [TableBuf; 3],
    my_published: [usize; 3],
    /// A row push would have exceeded the cap — truncation is certain.
    hit_cap: bool,
    kernel_calls: u64,
}

impl ChunkOut {
    /// Pushes a row unless that would exceed the global cap; on a cap hit,
    /// flags the chunk so the caller stops producing rows.
    fn try_push(
        &mut self,
        caps: &CapState,
        table: usize,
        verts: [NodeId; MAX_PATH_VERTICES],
        len: u8,
        delivered: &[Interaction],
        flow: Quantity,
    ) {
        if caps.cap > 0 {
            let others = caps.published[table].load(Ordering::Relaxed) - self.my_published[table];
            if others + self.tables[table].rows.len() >= caps.cap {
                self.hit_cap = true;
                return;
            }
        }
        self.tables[table].push(verts, len, delivered, flow);
    }

    /// Publishes this chunk's row counts so other chunks see them in their
    /// cap checks.
    fn publish(&mut self, caps: &CapState) {
        if caps.cap == 0 {
            return;
        }
        for t in 0..3 {
            let len = self.tables[t].rows.len();
            let delta = len - self.my_published[t];
            if delta > 0 {
                caps.published[t].fetch_add(delta, Ordering::Relaxed);
                self.my_published[t] = len;
            }
        }
    }
}

/// Emits every table row whose path starts with the single edge `u → v`:
/// the `L2` cycle `[u, v]` (when the return edge exists) and, per closing
/// vertex `w`, the shared-prefix `C2`/`L3` rows `[u, v, w]`.
///
/// `emit(table, verts, len, delivered, flow)` returns `false` to stop early
/// (row-cap pressure); the function then returns `false` too. Shared by the
/// eager per-anchor build and the incremental [`PathTables::apply`], so the
/// two paths cannot drift apart.
fn enumerate_first_edge<G, F>(
    graph: &G,
    config: &TablesConfig,
    u: NodeId,
    v: NodeId,
    first: &[Interaction],
    scratch: &mut ChainScratch,
    emit: &mut F,
) -> bool
where
    G: TableView,
    F: FnMut(usize, [NodeId; 3], u8, &[Interaction], Quantity) -> bool,
{
    if v == u {
        return true;
    }
    // The start vertex has an unlimited buffer, so the profile delivered
    // into `v` is the edge's interaction list itself (`first`) — the shared
    // prefix of every path through `u → v` costs nothing to "compute".
    if config.build_l2 {
        if let Some(back) = graph.pair(v, u) {
            let flow = scratch.reduce_pair(first, back);
            if !emit(L2, [u, v, u], 2, scratch.delivered(), flow) {
                return false;
            }
        }
    }
    if config.build_l3 || config.build_c2 {
        let mut keep_going = true;
        graph.for_each_out(v, &mut |w, mid| {
            if w == u || w == v {
                return true;
            }
            let closing = if config.build_l3 {
                graph.pair(w, u)
            } else {
                None
            };
            if closing.is_none() && !config.build_c2 {
                return true;
            }
            // One kernel pass for the shared `u → v → w` prefix; the C2
            // row reuses it as-is, the L3 row extends it by one pass.
            let mid_flow = scratch.reduce_pair(first, mid);
            if config.build_c2 && !emit(C2, [u, v, w], 3, scratch.delivered(), mid_flow) {
                keep_going = false;
                return false;
            }
            if let Some(close) = closing {
                let flow = scratch.extend_through(close);
                if !emit(L3, [u, v, w], 3, scratch.extended_delivered(), flow) {
                    keep_going = false;
                    return false;
                }
            }
            true
        });
        if !keep_going {
            return false;
        }
    }
    true
}

/// Builds every row anchored at `u` into `out`, using the chain kernel on
/// the graph's interaction slices directly.
fn build_anchor<G: TableView>(
    graph: &G,
    config: &TablesConfig,
    u: NodeId,
    scratch: &mut ChainScratch,
    out: &mut ChunkOut,
    caps: &CapState,
) {
    let starts = [
        out.tables[L2].rows.len(),
        out.tables[L3].rows.len(),
        out.tables[C2].rows.len(),
    ];
    graph.for_each_out(u, &mut |v, first| {
        if out.hit_cap {
            return false;
        }
        enumerate_first_edge(
            graph,
            config,
            u,
            v,
            first,
            scratch,
            &mut |table, verts, len, delivered, flow| {
                out.try_push(caps, table, verts, len, delivered, flow);
                !out.hit_cap
            },
        )
    });
    // Adjacency order is arbitrary; sort this anchor's slice of each table
    // so concatenated chunks come out globally sorted by vertex sequence.
    for (t, &start) in starts.iter().enumerate() {
        out.tables[t].rows[start..].sort_unstable_by(|a, b| a.vertices().cmp(b.vertices()));
    }
    out.publish(caps);
}

/// Builds the tables for an ascending, deduplicated anchor list, optionally
/// fanning chunks of anchors out over the worker pool.
pub(crate) fn build_for_anchor_list<G: TableView>(
    graph: &G,
    config: &TablesConfig,
    anchors: &[NodeId],
    parallel: bool,
) -> PathTables {
    let caps = CapState {
        cap: config.max_rows,
        published: [
            AtomicUsize::new(0),
            AtomicUsize::new(0),
            AtomicUsize::new(0),
        ],
    };
    let run_chunk = |chunk: &&[NodeId]| -> ChunkOut {
        let mut scratch = ChainScratch::new();
        let mut out = ChunkOut::default();
        for &u in *chunk {
            if out.hit_cap {
                break;
            }
            build_anchor(graph, config, u, &mut scratch, &mut out, &caps);
        }
        out.kernel_calls = scratch.kernel_calls();
        out
    };

    let chunks: Vec<&[NodeId]> = if parallel && anchors.len() > 1 {
        let threads = effective_threads();
        // Several chunks per worker so the atomic-cursor pool can balance
        // skewed anchors; chunks stay contiguous to keep the output sorted.
        let chunk_size = anchors.len().div_ceil(threads * 8).max(1);
        anchors.chunks(chunk_size).collect()
    } else {
        vec![anchors]
    };
    let outputs = parallel_map(&chunks, run_chunk);

    let mut tables = PathTables {
        config: *config,
        ..PathTables::default()
    };
    let mut hit_cap = false;
    let mut merged: [TableBuf; 3] = Default::default();
    for out in &outputs {
        hit_cap |= out.hit_cap;
        tables.kernel_calls += out.kernel_calls;
    }
    for mut out in outputs {
        for (t, merged_buf) in merged.iter_mut().enumerate() {
            let buf = std::mem::take(&mut out.tables[t]);
            if merged_buf.rows.is_empty() {
                *merged_buf = buf;
                continue;
            }
            let base =
                u32::try_from(merged_buf.arena.len()).expect("merged arena exceeds u32 offsets");
            merged_buf.arena.extend_from_slice(&buf.arena);
            merged_buf.rows.extend(buf.rows.into_iter().map(|mut r| {
                r.delivered_start = base
                    .checked_add(r.delivered_start)
                    .expect("merged arena exceeds u32 offsets");
                r
            }));
        }
    }
    for (t, buf) in merged.into_iter().enumerate() {
        let dest = match t {
            L2 => &mut tables.l2,
            L3 => &mut tables.l3,
            _ => &mut tables.c2,
        };
        dest.rows = buf.rows;
        dest.arena = buf.arena;
        if config.max_rows > 0 && dest.rows.len() > config.max_rows {
            hit_cap = true;
            dest.rows.truncate(config.max_rows);
        }
        dest.build_offsets();
    }
    tables.truncated = hit_cap;
    tables
}

/// Memoizing per-anchor table builder (anchor-lazy mode).
///
/// A search that only ever touches a few anchors — serving one suspicious
/// account, expanding one seed — should not pay for precomputing the whole
/// graph. `LazyPathTables` builds each anchor's rows on first request with
/// [`PathTables::for_anchors`] and caches them, so repeated queries are
/// lookups and total kernel work stays proportional to the anchors
/// actually visited.
///
/// The cache does not borrow the graph — queries pass it in — so a live
/// pipeline can alternate [`tin_graph::TemporalGraph::apply`] with queries
/// on one long-lived cache, calling [`LazyPathTables::apply`] after each
/// graph delta to evict exactly the anchors the delta invalidated. Always
/// query with the same (evolving) graph the cache was maintained against.
#[derive(Debug, Default)]
pub struct LazyPathTables {
    config: TablesConfig,
    cache: HashMap<NodeId, PathTables>,
    kernel_calls: u64,
}

impl LazyPathTables {
    /// Creates an empty lazy builder; nothing is computed yet.
    pub fn new(config: TablesConfig) -> Self {
        LazyPathTables {
            config,
            cache: HashMap::new(),
            kernel_calls: 0,
        }
    }

    /// The tables restricted to `anchor`, built over `graph` on first
    /// request and memoized. Out-of-range anchors yield empty tables.
    pub fn tables_for<G: TableView>(&mut self, graph: &G, anchor: NodeId) -> &PathTables {
        if !self.cache.contains_key(&anchor) {
            let built = PathTables::for_anchors(graph, &self.config, &[anchor]);
            self.kernel_calls += built.kernel_calls();
            self.cache.insert(anchor, built);
        }
        &self.cache[&anchor]
    }

    /// Maintains the cache after `graph` absorbed a delta — additions and
    /// sliding-window evictions alike: evicts every anchor the delta
    /// invalidated (see [`invalidated_anchors`]) and returns how many
    /// cached entries that dropped. Subsequent queries rebuild the evicted
    /// anchors against the changed graph; untouched entries stay warm.
    pub fn apply<G: TableView>(&mut self, graph: &G, applied: &AppliedDelta) -> usize {
        let mut evicted = 0;
        for anchor in invalidated_anchors(graph, applied) {
            evicted += usize::from(self.cache.remove(&anchor).is_some());
        }
        evicted
    }

    /// Number of distinct anchors built so far.
    pub fn built_anchors(&self) -> usize {
        self.cache.len()
    }

    /// Total chain-kernel passes across all memoized builds (repeat queries
    /// add nothing).
    pub fn kernel_calls(&self) -> u64 {
        self.kernel_calls
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tin_graph::builder::from_records;
    use tin_graph::TemporalGraph;

    fn sample() -> TemporalGraph {
        from_records([
            ("x", "y", 1, 5.0),
            ("y", "x", 4, 3.0),
            ("x", "z", 2, 2.0),
            ("z", "x", 3, 9.0),
            ("y", "z", 5, 4.0),
            ("z", "w", 6, 1.0),
        ])
    }

    #[test]
    fn l2_rows_and_flows() {
        let g = sample();
        let t = PathTables::build(&g, &TablesConfig::default());
        assert!(!t.truncated);
        // 2-hop cycles: x<->y (both anchors) and x<->z (both anchors).
        assert_eq!(t.l2.len(), 4);
        let x = g.node_by_name("x").unwrap();
        let rows = PathTables::rows_for(&t.l2, x);
        assert_eq!(rows.len(), 2);
        // x->y->x: y receives 5 at time 1, returns min(3,5)=3 at time 4.
        let via_y = rows
            .iter()
            .find(|r| r.vertices()[1] == g.node_by_name("y").unwrap())
            .unwrap();
        assert_eq!(via_y.flow, 3.0);
        // x->z->x: z receives 2 at time 2, returns min(9,2)=2 at time 3.
        let via_z = rows
            .iter()
            .find(|r| r.vertices()[1] == g.node_by_name("z").unwrap())
            .unwrap();
        assert_eq!(via_z.flow, 2.0);
    }

    #[test]
    fn l3_rows_and_flows() {
        let g = sample();
        let t = PathTables::build(&g, &TablesConfig::default());
        // 3-hop cycles: x->y->z->x (and rotations y->z->x->y, z->x->y->z).
        assert_eq!(t.l3.len(), 3);
        let x = g.node_by_name("x").unwrap();
        let rows = PathTables::rows_for(&t.l3, x);
        assert_eq!(rows.len(), 1);
        // x->y->z->x: y gets 5@1, forwards min(4,5)=4@5, z forwards nothing
        // (its only return interaction is at time 3 < 5)... so flow 0.
        assert_eq!(rows[0].flow, 0.0);
        assert!(t.l3.delivered(&rows[0]).is_empty());
    }

    #[test]
    fn c2_rows_are_chains_over_distinct_vertices() {
        let g = sample();
        let t = PathTables::build(&g, &TablesConfig::default());
        assert!(t.c2.iter().all(|r| {
            let v = r.vertices();
            v.len() == 3 && v[0] != v[1] && v[1] != v[2] && v[0] != v[2]
        }));
        let x = g.node_by_name("x").unwrap();
        let y = g.node_by_name("y").unwrap();
        let z = g.node_by_name("z").unwrap();
        let xyz =
            t.c2.iter()
                .find(|r| r.vertices() == [x, y, z])
                .expect("x->y->z chain present");
        // y receives 5@1 and forwards min(4,5)=4@5.
        assert_eq!(xyz.flow, 4.0);
        let delivered = t.c2.delivered(xyz);
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].time, 5);
        assert_eq!(delivered[0].quantity, 4.0);
    }

    #[test]
    fn stored_parts_roundtrip_is_row_identical() {
        let g = sample();
        let t = PathTables::build(&g, &TablesConfig::default());
        assert!(!t.is_partial());
        let dump = |table: &PathTable| {
            table
                .iter()
                .map(|r| (r.vertices().to_vec(), r.flow, table.delivered(r).to_vec()))
                .collect::<Vec<_>>()
        };
        let restore = |rows: &[(Vec<NodeId>, Quantity, Vec<Interaction>)]| {
            PathTable::from_row_contents(
                rows.iter()
                    .map(|(v, f, d)| (v.as_slice(), *f, d.as_slice())),
            )
            .unwrap()
        };
        let (l2, l3, c2) = (dump(&t.l2), dump(&t.l3), dump(&t.c2));
        let back = PathTables::from_stored_parts(
            *t.config(),
            t.truncated,
            restore(&l2),
            restore(&l3),
            restore(&c2),
        );
        assert_eq!(t.first_row_divergence(&back), None);
        assert_eq!(back.kernel_calls(), 0);
        assert_eq!(back.l2.garbage_len(), 0);
        // The restored set keeps working as a live table: rows_for and the
        // anchor index came back with it.
        let x = g.node_by_name("x").unwrap();
        assert_eq!(back.l2.rows_for(x).len(), t.l2.rows_for(x).len());
    }

    #[test]
    fn from_row_contents_rejects_malformed_input() {
        let a = NodeId(0);
        let b = NodeId(1);
        let c = NodeId(2);
        // Too few vertices.
        let err = PathTable::from_row_contents([(&[a][..], 1.0, &[][..])]).unwrap_err();
        assert!(err.contains("vertices"));
        // Out of order (and duplicate) sequences.
        let rows = [(&[b, c][..], 1.0, &[][..]), (&[a, b][..], 1.0, &[][..])];
        let err = PathTable::from_row_contents(rows).unwrap_err();
        assert!(err.contains("not strictly after"));
        let dup = [(&[a, b][..], 1.0, &[][..]), (&[a, b][..], 2.0, &[][..])];
        assert!(PathTable::from_row_contents(dup).is_err());
        // Valid two-row table round-trips content.
        let del = [Interaction::new(3, 2.0)];
        let ok = PathTable::from_row_contents([
            (&[a, b][..], 2.0, &del[..]),
            (&[b, a][..], 0.0, &[][..]),
        ])
        .unwrap();
        assert_eq!(ok.len(), 2);
        assert_eq!(ok.delivered(&ok.rows()[0]), &del[..]);
        assert_eq!(ok.rows_for(a).len(), 1);
    }

    #[test]
    fn tables_can_be_selectively_built() {
        let g = sample();
        let cfg = TablesConfig {
            build_c2: false,
            ..TablesConfig::default()
        };
        let t = PathTables::build(&g, &cfg);
        assert!(t.c2.is_empty());
        assert!(!t.l2.is_empty());
        assert_eq!(t.row_count(), t.l2.len() + t.l3.len());
    }

    #[test]
    fn row_cap_marks_truncation() {
        let g = sample();
        let cfg = TablesConfig {
            max_rows: 1,
            ..TablesConfig::default()
        };
        let t = PathTables::build(&g, &cfg);
        assert!(t.truncated);
        assert!(t.l2.len() <= 1);
    }

    #[test]
    fn exactly_cap_rows_is_not_truncation() {
        let g = sample();
        // The sample has 4 L2, 3 L3 and 8 C2 rows; a cap of 8 fits all.
        let full = PathTables::build(&g, &TablesConfig::default());
        let capped = PathTables::build(
            &g,
            &TablesConfig {
                max_rows: full.c2.len().max(full.l2.len()).max(full.l3.len()),
                ..TablesConfig::default()
            },
        );
        assert!(!capped.truncated);
        assert_eq!(capped.row_count(), full.row_count());
    }

    #[test]
    fn rows_for_unknown_anchor_is_empty() {
        let g = sample();
        let t = PathTables::build(&g, &TablesConfig::default());
        let w = g.node_by_name("w").unwrap();
        assert!(PathTables::rows_for(&t.l2, w).is_empty());
    }

    #[test]
    fn serial_and_parallel_builds_agree() {
        let g = sample();
        let cfg = TablesConfig::default();
        let serial = PathTables::build_serial(&g, &cfg);
        let parallel = PathTables::build_parallel(&g, &cfg);
        assert_eq!(serial.truncated, parallel.truncated);
        for (a, b) in [
            (&serial.l2, &parallel.l2),
            (&serial.l3, &parallel.l3),
            (&serial.c2, &parallel.c2),
        ] {
            assert_eq!(a.len(), b.len());
            for (ra, rb) in a.iter().zip(b.iter()) {
                assert_eq!(ra.vertices(), rb.vertices());
                assert_eq!(ra.flow, rb.flow);
                assert_eq!(a.delivered(ra), b.delivered(rb));
            }
        }
    }

    #[test]
    fn for_anchors_matches_the_full_build_slice() {
        let g = sample();
        let cfg = TablesConfig::default();
        let full = PathTables::build(&g, &cfg);
        let x = g.node_by_name("x").unwrap();
        // Duplicate anchors are deduplicated.
        let subset = PathTables::for_anchors(&g, &cfg, &[x, x]);
        assert_eq!(subset.l2.len(), full.l2.rows_for(x).len());
        assert_eq!(subset.l3.len(), full.l3.rows_for(x).len());
        assert_eq!(subset.c2.len(), full.c2.rows_for(x).len());
        for (sub_table, full_table) in [
            (&subset.l2, &full.l2),
            (&subset.l3, &full.l3),
            (&subset.c2, &full.c2),
        ] {
            for (rs, rf) in sub_table.iter().zip(full_table.rows_for(x)) {
                assert_eq!(rs.vertices(), rf.vertices());
                assert_eq!(rs.flow, rf.flow);
                assert_eq!(sub_table.delivered(rs), full_table.delivered(rf));
            }
        }
        // Other anchors contribute nothing.
        let y = g.node_by_name("y").unwrap();
        assert!(subset.l2.rows_for(y).is_empty());
    }

    #[test]
    fn anchors_iterator_lists_anchors_with_rows() {
        let g = sample();
        let t = PathTables::build(&g, &TablesConfig::default());
        let anchors: Vec<NodeId> = t.l2.anchors().collect();
        let x = g.node_by_name("x").unwrap();
        let w = g.node_by_name("w").unwrap();
        assert!(anchors.contains(&x));
        assert!(!anchors.contains(&w));
        assert!(anchors.windows(2).all(|p| p[0] < p[1]));
        for &a in &anchors {
            assert!(!t.l2.rows_for(a).is_empty());
        }
    }

    #[test]
    fn lazy_tables_memoize_and_match_eager_rows() {
        let g = sample();
        let cfg = TablesConfig::default();
        let full = PathTables::build(&g, &cfg);
        let mut lazy = LazyPathTables::new(cfg);
        let x = g.node_by_name("x").unwrap();
        let first_calls = {
            let t = lazy.tables_for(&g, x);
            assert_eq!(t.l2.len(), full.l2.rows_for(x).len());
            assert_eq!(t.c2.len(), full.c2.rows_for(x).len());
            lazy.kernel_calls()
        };
        // A repeat query is a cache hit: no new kernel work.
        let _ = lazy.tables_for(&g, x);
        assert_eq!(lazy.kernel_calls(), first_calls);
        assert_eq!(lazy.built_anchors(), 1);
    }

    /// Asserts `got` and `want` carry identical rows (vertices, flows,
    /// delivered profiles) in identical order, table by table.
    fn assert_row_identical(got: &PathTables, want: &PathTables) {
        assert_eq!(got.first_row_divergence(want), None);
    }

    #[test]
    fn incremental_apply_matches_full_rebuild() {
        use tin_graph::{GraphDelta, Interaction, Node};
        let mut g = sample();
        let cfg = TablesConfig::default();
        let mut tables = PathTables::build_serial(&g, &cfg);
        let x = g.node_by_name("x").unwrap();
        let w = g.node_by_name("w").unwrap();
        // A batch that reshapes an existing edge, closes a new cycle through
        // a brand-new vertex, and touches a previously row-less anchor.
        let delta = GraphDelta::new(
            4,
            vec![Node { name: "q".into() }],
            vec![
                (x, w, Interaction::new(7, 2.0)),
                (w, NodeId(4), Interaction::new(8, 3.0)),
                (NodeId(4), x, Interaction::new(9, 1.0)),
            ],
        )
        .unwrap();
        let applied = g.apply(&delta).unwrap();
        let update = tables.apply(&g, &applied);
        assert!(!update.rebuilt);
        assert!(update.refreshed_groups > 0);
        assert_row_identical(&tables, &PathTables::build_serial(&g, &cfg));
    }

    #[test]
    fn incremental_apply_leaves_untouched_anchors_alone() {
        use tin_graph::{GraphDelta, Interaction};
        // Two disconnected 2-cycles; appending to one must not re-run the
        // kernel for the other.
        let mut g = from_records([
            ("a", "b", 1, 5.0),
            ("b", "a", 2, 3.0),
            ("c", "d", 1, 4.0),
            ("d", "c", 2, 2.0),
        ]);
        let cfg = TablesConfig::default();
        let mut tables = PathTables::build_serial(&g, &cfg);
        let a = g.node_by_name("a").unwrap();
        let b = g.node_by_name("b").unwrap();
        let delta = GraphDelta::new(4, vec![], vec![(a, b, Interaction::new(3, 1.0))]).unwrap();
        let applied = g.apply(&delta).unwrap();
        let update = tables.apply(&g, &applied);
        assert!(!update.rebuilt);
        // Exactly two row groups: the `[a, b, *]` block and the `[b, a]`
        // closing cycle; the disconnected c/d cycle is never revisited.
        assert_eq!(update.refreshed_groups, 2);
        assert_row_identical(&tables, &PathTables::build_serial(&g, &cfg));
    }

    #[test]
    fn repeated_small_appends_compact_the_arena() {
        use tin_graph::{GraphDelta, Interaction};
        let mut g = from_records([("a", "b", 1, 5.0), ("b", "a", 2, 3.0)]);
        let cfg = TablesConfig::default();
        let mut tables = PathTables::build_serial(&g, &cfg);
        let a = g.node_by_name("a").unwrap();
        let b = g.node_by_name("b").unwrap();
        for t in 0..200 {
            let delta =
                GraphDelta::new(2, vec![], vec![(a, b, Interaction::new(3 + t, 1.0))]).unwrap();
            let applied = g.apply(&delta).unwrap();
            tables.apply(&g, &applied);
        }
        let rebuilt = PathTables::build_serial(&g, &cfg);
        assert_row_identical(&tables, &rebuilt);
        // Garbage from 200 replacements was compacted away: the live arena
        // is within a constant factor of a fresh build's.
        assert!(
            tables.l2.arena.len() <= 2 * rebuilt.l2.arena.len().max(1),
            "arena grew unboundedly: {} vs fresh {}",
            tables.l2.arena.len(),
            rebuilt.l2.arena.len()
        );
    }

    #[test]
    fn apply_on_truncated_tables_falls_back_to_rebuild() {
        use tin_graph::{GraphDelta, Interaction};
        let mut g = sample();
        let cfg = TablesConfig {
            max_rows: 1,
            ..TablesConfig::default()
        };
        let mut tables = PathTables::build_serial(&g, &cfg);
        assert!(tables.truncated);
        let x = g.node_by_name("x").unwrap();
        let y = g.node_by_name("y").unwrap();
        let delta = GraphDelta::new(4, vec![], vec![(x, y, Interaction::new(9, 1.0))]).unwrap();
        let applied = g.apply(&delta).unwrap();
        let update = tables.apply(&g, &applied);
        assert!(update.rebuilt);
        assert!(tables.truncated, "cap still exceeded after the rebuild");
    }

    #[test]
    #[should_panic(expected = "for_anchors subset")]
    fn apply_on_an_anchor_subset_panics() {
        use tin_graph::{GraphDelta, Interaction};
        let mut g = sample();
        let x = g.node_by_name("x").unwrap();
        let y = g.node_by_name("y").unwrap();
        let mut subset = PathTables::for_anchors(&g, &TablesConfig::default(), &[x]);
        let delta = GraphDelta::new(4, vec![], vec![(x, y, Interaction::new(9, 1.0))]).unwrap();
        let applied = g.apply(&delta).unwrap();
        let _ = subset.apply(&g, &applied);
    }

    #[test]
    fn lazy_apply_evicts_only_invalidated_anchors() {
        use tin_graph::{GraphDelta, Interaction};
        let mut g = from_records([
            ("a", "b", 1, 5.0),
            ("b", "a", 2, 3.0),
            ("c", "d", 1, 4.0),
            ("d", "c", 2, 2.0),
        ]);
        let cfg = TablesConfig::default();
        let mut lazy = LazyPathTables::new(cfg);
        for v in g.node_ids() {
            let _ = lazy.tables_for(&g, v);
        }
        assert_eq!(lazy.built_anchors(), 4);
        let a = g.node_by_name("a").unwrap();
        let b = g.node_by_name("b").unwrap();
        let delta = GraphDelta::new(4, vec![], vec![(a, b, Interaction::new(3, 1.0))]).unwrap();
        let applied = g.apply(&delta).unwrap();
        let evicted = lazy.apply(&g, &applied);
        assert_eq!(evicted, 2, "exactly a and b drop out");
        assert_eq!(lazy.built_anchors(), 2);
        // Re-querying an evicted anchor rebuilds it against the grown graph.
        let full = PathTables::build_serial(&g, &cfg);
        let t = lazy.tables_for(&g, a);
        assert_eq!(t.l2.len(), full.l2.rows_for(a).len());
        let row = &t.l2.rows_for(a)[0];
        let want = &full.l2.rows_for(a)[0];
        assert_eq!(row.flow, want.flow);
    }

    #[test]
    fn lazy_single_anchor_does_anchor_local_work() {
        // A graph with one modest anchor and a large dense "elsewhere":
        // building tables for the anchor alone must not touch the dense part.
        let mut records: Vec<(String, String, i64, f64)> = Vec::new();
        let mut t = 0i64;
        let mut push = |a: String, b: String, records: &mut Vec<(String, String, i64, f64)>| {
            t += 1;
            records.push((a, b, t, 1.0));
        };
        // The anchor `a` has 3 successors, each with small out-degree.
        for i in 0..3 {
            push("a".into(), format!("s{i}"), &mut records);
            push(format!("s{i}"), "a".into(), &mut records);
            push(format!("s{i}"), format!("s{}", (i + 1) % 3), &mut records);
        }
        // A 14-vertex near-clique nowhere near `a`.
        for i in 0..14 {
            for j in 0..14 {
                if i != j {
                    push(format!("d{i}"), format!("d{j}"), &mut records);
                }
            }
        }
        let g = from_records(
            records
                .iter()
                .map(|(a, b, t, q)| (a.as_str(), b.as_str(), *t, *q)),
        );
        let cfg = TablesConfig::default();
        let full = PathTables::build_serial(&g, &cfg);
        let a = g.node_by_name("a").unwrap();
        let mut lazy = LazyPathTables::new(cfg);
        let _ = lazy.tables_for(&g, a);
        // O(deg²) bound: each out-edge (u,v) costs ≤ 1 L2 pass plus ≤ 2
        // passes (prefix + closing) per closing vertex w of v.
        let bound: u64 = g
            .out_neighbors(a)
            .map(|v| 1 + 2 * g.out_degree(v) as u64)
            .sum();
        assert!(
            lazy.kernel_calls() <= bound,
            "lazy build did {} kernel passes, O(deg²) bound is {bound}",
            lazy.kernel_calls()
        );
        // ... while the eager build pays for the dense region too.
        assert!(
            full.kernel_calls() > 10 * lazy.kernel_calls(),
            "full build ({} passes) should dwarf the lazy build ({} passes)",
            full.kernel_calls(),
            lazy.kernel_calls()
        );
    }
}
