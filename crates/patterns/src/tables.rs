//! Path/cycle precomputation tables — Section 5.2 of the paper.
//!
//! The PB (precomputation-based) matcher materializes, once per graph:
//!
//! * `L2` — all 2-hop cycles `u → v → u`;
//! * `L3` — all 3-hop cycles `u → v → w → u`;
//! * `C2` — all 2-hop chains `u → v → w` over distinct vertices.
//!
//! Every row stores, besides the vertex identifiers, the interaction set that
//! reaches the path's final vertex under the greedy scan (the same reduction
//! used by graph simplification, Lemma 3): for chains this *is* the maximum
//! flow profile, so pattern instances assembled from whole rows can sum
//! precomputed flows instead of re-running any flow algorithm.
//!
//! The paper notes that on the two large datasets only the cycle tables fit
//! in memory while the chain table is feasible for Prosper; [`TablesConfig`]
//! exposes the same choice (plus a row cap as a safety valve).

use tin_flow::greedy_flow_traced;
use tin_graph::{GraphBuilder, Interaction, NodeId, Quantity, TemporalGraph};

/// Which tables to build and how large they may grow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TablesConfig {
    /// Build the 2-hop cycle table.
    pub build_l2: bool,
    /// Build the 3-hop cycle table.
    pub build_l3: bool,
    /// Build the 2-hop chain table (can be much larger than the cycle
    /// tables; the paper only affords it for Prosper Loans).
    pub build_c2: bool,
    /// Hard cap on the number of rows per table (0 = unlimited).
    pub max_rows: usize,
}

impl Default for TablesConfig {
    fn default() -> Self {
        TablesConfig {
            build_l2: true,
            build_l3: true,
            build_c2: true,
            max_rows: 2_000_000,
        }
    }
}

/// A precomputed path: the vertices along it and the greedy-reduced
/// interaction set entering its final vertex.
#[derive(Debug, Clone)]
pub struct PathRow {
    /// Vertices along the path, starting vertex first. For cycle rows the
    /// final (returning) vertex is not repeated.
    pub vertices: Vec<NodeId>,
    /// Greedy transfers into the path's final vertex: `(time, quantity)`.
    pub delivered: Vec<Interaction>,
    /// Total delivered quantity (the path's flow).
    pub flow: Quantity,
}

impl PathRow {
    /// The anchor (starting vertex) of the path.
    pub fn anchor(&self) -> NodeId {
        self.vertices[0]
    }
}

/// The precomputed tables for one graph.
#[derive(Debug, Clone, Default)]
pub struct PathTables {
    /// 2-hop cycles `u → v → u`, sorted by anchor `u`.
    pub l2: Vec<PathRow>,
    /// 3-hop cycles `u → v → w → u`, sorted by anchor `u`.
    pub l3: Vec<PathRow>,
    /// 2-hop chains `u → v → w`, sorted by start `u`.
    pub c2: Vec<PathRow>,
    /// Whether any table hit the configured row cap (results would be
    /// partial; the PB matcher refuses to use a truncated table).
    pub truncated: bool,
}

impl PathTables {
    /// Builds the tables for `graph`.
    pub fn build(graph: &TemporalGraph, config: &TablesConfig) -> Self {
        let mut tables = PathTables::default();
        if config.build_l2 {
            tables.build_l2(graph, config.max_rows);
        }
        if config.build_l3 {
            tables.build_l3(graph, config.max_rows);
        }
        if config.build_c2 {
            tables.build_c2(graph, config.max_rows);
        }
        tables
    }

    fn build_l2(&mut self, graph: &TemporalGraph, cap: usize) {
        for u in graph.node_ids() {
            for v in graph.out_neighbors(u) {
                if v == u || !graph.has_edge(v, u) {
                    continue;
                }
                if cap > 0 && self.l2.len() >= cap {
                    self.truncated = true;
                    return;
                }
                let row = path_row(graph, &[u, v, u]);
                self.l2.push(row);
            }
        }
        self.l2.sort_by_key(|r| r.vertices.clone());
    }

    fn build_l3(&mut self, graph: &TemporalGraph, cap: usize) {
        for u in graph.node_ids() {
            for v in graph.out_neighbors(u) {
                if v == u {
                    continue;
                }
                for w in graph.out_neighbors(v) {
                    if w == u || w == v || !graph.has_edge(w, u) {
                        continue;
                    }
                    if cap > 0 && self.l3.len() >= cap {
                        self.truncated = true;
                        return;
                    }
                    let row = path_row(graph, &[u, v, w, u]);
                    self.l3.push(row);
                }
            }
        }
        self.l3.sort_by_key(|r| r.vertices.clone());
    }

    fn build_c2(&mut self, graph: &TemporalGraph, cap: usize) {
        for u in graph.node_ids() {
            for v in graph.out_neighbors(u) {
                if v == u {
                    continue;
                }
                for w in graph.out_neighbors(v) {
                    if w == u || w == v {
                        continue;
                    }
                    if cap > 0 && self.c2.len() >= cap {
                        self.truncated = true;
                        return;
                    }
                    let row = path_row(graph, &[u, v, w]);
                    self.c2.push(row);
                }
            }
        }
        self.c2.sort_by_key(|r| r.vertices.clone());
    }

    /// Rows of `table` anchored at `anchor` (tables are sorted by anchor, so
    /// this is a binary-search slice).
    pub fn rows_for(table: &[PathRow], anchor: NodeId) -> &[PathRow] {
        let start = table.partition_point(|r| r.anchor() < anchor);
        let end = table.partition_point(|r| r.anchor() <= anchor);
        &table[start..end]
    }

    /// Total number of rows across all tables.
    pub fn row_count(&self) -> usize {
        self.l2.len() + self.l3.len() + self.c2.len()
    }
}

/// Runs the greedy scan over the path `vertices` (edges between consecutive
/// vertices, with a repeated first vertex meaning "back to the anchor") and
/// records what reaches the final vertex.
fn path_row(graph: &TemporalGraph, vertices: &[NodeId]) -> PathRow {
    // Materialize the path as a tiny chain DAG (repeated vertices become
    // distinct copies, exactly like pattern instances).
    let mut b = GraphBuilder::with_capacity(vertices.len(), vertices.len() - 1);
    let ids: Vec<NodeId> = (0..vertices.len())
        .map(|i| b.add_node(format!("p{i}")))
        .collect();
    for (i, pair) in vertices.windows(2).enumerate() {
        let edge = graph
            .find_edge(pair[0], pair[1])
            .expect("path edges exist by construction");
        b.add_edge(ids[i], ids[i + 1], graph.edge(edge).interactions.clone());
    }
    let chain = b.build();
    let result = greedy_flow_traced(&chain, ids[0], ids[vertices.len() - 1]);
    let delivered: Vec<Interaction> = result
        .trace
        .iter()
        .filter(|s| s.dst == ids[vertices.len() - 1] && s.transferred > 0.0)
        .map(|s| Interaction::new(s.time, s.transferred))
        .collect();
    let flow = delivered.iter().map(|i| i.quantity).sum();
    // Store the path without repeating the anchor at the end.
    let stored: Vec<NodeId> = if vertices.len() > 1 && vertices[0] == vertices[vertices.len() - 1] {
        vertices[..vertices.len() - 1].to_vec()
    } else {
        vertices.to_vec()
    };
    PathRow {
        vertices: stored,
        delivered,
        flow,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tin_graph::builder::from_records;

    fn sample() -> TemporalGraph {
        from_records([
            ("x", "y", 1, 5.0),
            ("y", "x", 4, 3.0),
            ("x", "z", 2, 2.0),
            ("z", "x", 3, 9.0),
            ("y", "z", 5, 4.0),
            ("z", "w", 6, 1.0),
        ])
    }

    #[test]
    fn l2_rows_and_flows() {
        let g = sample();
        let t = PathTables::build(&g, &TablesConfig::default());
        assert!(!t.truncated);
        // 2-hop cycles: x<->y (both anchors) and x<->z (both anchors).
        assert_eq!(t.l2.len(), 4);
        let x = g.node_by_name("x").unwrap();
        let rows = PathTables::rows_for(&t.l2, x);
        assert_eq!(rows.len(), 2);
        // x->y->x: y receives 5 at time 1, returns min(3,5)=3 at time 4.
        let via_y = rows
            .iter()
            .find(|r| r.vertices[1] == g.node_by_name("y").unwrap())
            .unwrap();
        assert_eq!(via_y.flow, 3.0);
        // x->z->x: z receives 2 at time 2, returns min(9,2)=2 at time 3.
        let via_z = rows
            .iter()
            .find(|r| r.vertices[1] == g.node_by_name("z").unwrap())
            .unwrap();
        assert_eq!(via_z.flow, 2.0);
    }

    #[test]
    fn l3_rows_and_flows() {
        let g = sample();
        let t = PathTables::build(&g, &TablesConfig::default());
        // 3-hop cycles: x->y->z->x (and rotations y->z->x->y, z->x->y->z).
        assert_eq!(t.l3.len(), 3);
        let x = g.node_by_name("x").unwrap();
        let rows = PathTables::rows_for(&t.l3, x);
        assert_eq!(rows.len(), 1);
        // x->y->z->x: y gets 5@1, forwards min(4,5)=4@5, z forwards nothing
        // (its only return interaction is at time 3 < 5)... so flow 0.
        assert_eq!(rows[0].flow, 0.0);
    }

    #[test]
    fn c2_rows_are_chains_over_distinct_vertices() {
        let g = sample();
        let t = PathTables::build(&g, &TablesConfig::default());
        // Chains: x->y->z, x->z->w, y->x->z? x->z yes so y->x->z valid,
        // y->z->x? wait z->x yes but x==start? no start is y so valid,
        // y->z->w, z->x->y, x->y->... etc. Just check a known one and
        // distinctness.
        assert!(t.c2.iter().all(|r| {
            r.vertices.len() == 3
                && r.vertices[0] != r.vertices[1]
                && r.vertices[1] != r.vertices[2]
                && r.vertices[0] != r.vertices[2]
        }));
        let x = g.node_by_name("x").unwrap();
        let y = g.node_by_name("y").unwrap();
        let z = g.node_by_name("z").unwrap();
        let xyz =
            t.c2.iter()
                .find(|r| r.vertices == vec![x, y, z])
                .expect("x->y->z chain present");
        // y receives 5@1 and forwards min(4,5)=4@5.
        assert_eq!(xyz.flow, 4.0);
        assert_eq!(xyz.delivered.len(), 1);
        assert_eq!(xyz.delivered[0].time, 5);
    }

    #[test]
    fn tables_can_be_selectively_built() {
        let g = sample();
        let cfg = TablesConfig {
            build_c2: false,
            ..TablesConfig::default()
        };
        let t = PathTables::build(&g, &cfg);
        assert!(t.c2.is_empty());
        assert!(!t.l2.is_empty());
        assert_eq!(t.row_count(), t.l2.len() + t.l3.len());
    }

    #[test]
    fn row_cap_marks_truncation() {
        let g = sample();
        let cfg = TablesConfig {
            max_rows: 1,
            ..TablesConfig::default()
        };
        let t = PathTables::build(&g, &cfg);
        assert!(t.truncated);
        assert!(t.l2.len() <= 1);
    }

    #[test]
    fn rows_for_unknown_anchor_is_empty() {
        let g = sample();
        let t = PathTables::build(&g, &TablesConfig::default());
        let w = g.node_by_name("w").unwrap();
        assert!(PathTables::rows_for(&t.l2, w).is_empty());
    }
}
