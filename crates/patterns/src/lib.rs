//! # tin-patterns
//!
//! Flow pattern enumeration in temporal interaction networks (Section 5 of
//! the paper).
//!
//! A *pattern* is a small labelled DAG; an *instance* maps pattern vertices
//! to graph vertices (same label ⇒ same vertex, different labels ⇒ different
//! vertices) such that every pattern edge exists in the graph. The flow of an
//! instance is the maximum flow from the pattern's source to its sink over
//! the instance's interactions.
//!
//! Two enumeration strategies are provided, mirroring the paper's
//! evaluation:
//!
//! * [`browse`] — **GB**, graph browsing: backtracking expansion of partial
//!   matches directly over the graph's adjacency lists;
//! * [`precomputed`] — **PB**, precomputation-based: path/cycle tables
//!   ([`tables`]) are built once per graph and pattern instances are
//!   assembled by scanning/joining them, reusing precomputed greedy flows
//!   whenever the pattern structure allows it.
//!
//! The pattern catalogue of the evaluation (P1–P6 and the relaxed patterns
//! RP1–RP3) is in [`catalogue`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod browse;
pub mod catalogue;
pub mod enumerate;
pub mod instance;
pub mod pattern;
pub mod precomputed;
pub mod reference;
pub mod relaxed;
pub mod sharded;
pub mod tables;
pub mod view;

pub use browse::enumerate_gb;
pub use catalogue::{PatternCatalogue, PatternId};
pub use enumerate::{search_gb, search_pb, PatternSearchResult};
pub use instance::{instance_flow, Instance};
pub use pattern::{Pattern, PatternError};
pub use precomputed::enumerate_pb;
pub use relaxed::{relaxed_search_gb, relaxed_search_pb, RelaxedPattern};
pub use sharded::ShardedTables;
pub use tables::{
    invalidated_anchors, LazyPathTables, PathRow, PathTable, PathTableBuilder, PathTables,
    TablesConfig, TablesUpdate,
};
pub use view::TableView;
