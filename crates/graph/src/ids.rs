//! Strongly typed identifiers and scalar aliases used throughout the
//! workspace.
//!
//! Node and edge identifiers are plain dense indices (`u32`) wrapped in
//! newtypes so they cannot be confused with each other or with ordinary
//! integers. Timestamps are signed 64-bit integers (they routinely hold unix
//! timestamps in seconds or milliseconds); quantities are `f64`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Timestamp of an interaction.
///
/// The paper treats timestamps as opaque, totally ordered values. We use
/// `i64` so that real-world unix timestamps as well as small hand-written
/// example values fit naturally. The reserved values [`Time::MIN`] and
/// [`Time::MAX`] are used for the synthetic source/sink interactions of
/// Figure 4 ("smallest possible" / "largest possible" timestamps).
pub type Time = i64;

/// Transferred quantity of an interaction.
///
/// Quantities are non-negative finite numbers in normal use;
/// `f64::INFINITY` is used for the synthetic source/sink interactions.
pub type Quantity = f64;

/// Identifier of a node (vertex) in a [`crate::TemporalGraph`].
///
/// Node identifiers are dense indices assigned by the [`crate::GraphBuilder`]
/// in insertion order; they index directly into the graph's node table.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifier of a directed edge in a [`crate::TemporalGraph`].
///
/// Edge identifiers are dense indices into the graph's edge table.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// Returns the identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a `usize` index.
    ///
    /// # Panics
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index overflows u32"))
    }
}

impl EdgeId {
    /// Returns the identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an `EdgeId` from a `usize` index.
    ///
    /// # Panics
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        EdgeId(u32::try_from(index).expect("edge index overflows u32"))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<u32> for EdgeId {
    fn from(v: u32) -> Self {
        EdgeId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id, NodeId(42));
        assert_eq!(format!("{id}"), "n42");
        assert_eq!(format!("{id:?}"), "n42");
    }

    #[test]
    fn edge_id_roundtrip() {
        let id = EdgeId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id, EdgeId(7));
        assert_eq!(format!("{id}"), "e7");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(NodeId(1) < NodeId(2));
        assert!(EdgeId(0) < EdgeId(10));
    }

    #[test]
    #[should_panic(expected = "node index overflows u32")]
    fn node_id_overflow_panics() {
        let _ = NodeId::from_index(usize::MAX);
    }

    #[test]
    fn ids_serialize_as_integers() {
        let n = NodeId(3);
        let s = serde_json::to_string(&n).unwrap();
        assert_eq!(s, "3");
        let back: NodeId = serde_json::from_str(&s).unwrap();
        assert_eq!(back, n);
    }
}
