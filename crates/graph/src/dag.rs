//! Source/sink discovery and the synthetic source/sink augmentation of
//! Figure 4 of the paper.
//!
//! The flow computation problem is defined on connected DAGs with exactly one
//! source vertex (no incoming edges) and one sink vertex (no outgoing edges).
//! Real subgraphs often have several of each; the paper handles this by
//! adding a *synthetic source* `s*` connected to every original source with a
//! single interaction `(-∞, ∞)` and a *synthetic sink* `t*` reached from
//! every original sink with a single interaction `(+∞, ∞)`.

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::TemporalGraph;
use crate::ids::NodeId;
use crate::interaction::Interaction;
use crate::topo::is_dag;

/// Name given to the synthetic source vertex added by
/// [`augment_with_synthetic_endpoints`].
pub const SYNTHETIC_SOURCE_NAME: &str = "__synthetic_source__";
/// Name given to the synthetic sink vertex added by
/// [`augment_with_synthetic_endpoints`].
pub const SYNTHETIC_SINK_NAME: &str = "__synthetic_sink__";

/// Vertices of a graph that have no incoming edges.
pub fn sources(graph: &TemporalGraph) -> Vec<NodeId> {
    graph
        .node_ids()
        .filter(|&v| graph.in_degree(v) == 0)
        .collect()
}

/// Vertices of a graph that have no outgoing edges.
pub fn sinks(graph: &TemporalGraph) -> Vec<NodeId> {
    graph
        .node_ids()
        .filter(|&v| graph.out_degree(v) == 0)
        .collect()
}

/// Identification of the (unique) source and sink of a flow DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EndpointInfo {
    /// The single vertex without incoming edges.
    pub source: NodeId,
    /// The single vertex without outgoing edges.
    pub sink: NodeId,
}

/// Finds the unique source and sink of `graph`, verifying it is a DAG.
///
/// Returns an error if the graph is cyclic or does not have exactly one
/// source and one sink.
pub fn endpoints(graph: &TemporalGraph) -> Result<EndpointInfo, GraphError> {
    if !is_dag(graph) {
        return Err(GraphError::NotADag);
    }
    let sources = sources(graph);
    let sinks = sinks(graph);
    if sources.len() != 1 {
        return Err(GraphError::NoUniqueSource {
            found: sources.len(),
        });
    }
    if sinks.len() != 1 {
        return Err(GraphError::NoUniqueSink { found: sinks.len() });
    }
    Ok(EndpointInfo {
        source: sources[0],
        sink: sinks[0],
    })
}

/// Result of [`augment_with_synthetic_endpoints`].
#[derive(Debug, Clone)]
pub struct AugmentedGraph {
    /// The augmented graph (original vertices keep their identifiers; the
    /// synthetic source and sink are appended at the end when added).
    pub graph: TemporalGraph,
    /// The source vertex to use for flow computation. Either the single
    /// original source, or the synthetic one.
    pub source: NodeId,
    /// The sink vertex to use for flow computation.
    pub sink: NodeId,
    /// Whether a synthetic source vertex was added.
    pub added_source: bool,
    /// Whether a synthetic sink vertex was added.
    pub added_sink: bool,
}

/// Ensures the graph has a single source and a single sink, adding synthetic
/// endpoints when necessary (Figure 4 of the paper).
///
/// * If the graph already has exactly one source (resp. sink), it is reused.
/// * Otherwise a synthetic vertex is appended and connected to every original
///   source (resp. from every original sink) with a single unbounded
///   interaction at the smallest (resp. largest) possible timestamp, so the
///   original endpoints can emit/absorb any quantity.
///
/// The graph must be a DAG and must contain at least one source and one sink
/// candidate (an empty graph or a graph where every vertex lies on a cycle is
/// rejected).
pub fn augment_with_synthetic_endpoints(
    graph: &TemporalGraph,
) -> Result<AugmentedGraph, GraphError> {
    if !is_dag(graph) {
        return Err(GraphError::NotADag);
    }
    let orig_sources = sources(graph);
    let orig_sinks = sinks(graph);
    if orig_sources.is_empty() {
        return Err(GraphError::NoUniqueSource { found: 0 });
    }
    if orig_sinks.is_empty() {
        return Err(GraphError::NoUniqueSink { found: 0 });
    }
    let need_source = orig_sources.len() > 1;
    let need_sink = orig_sinks.len() > 1;
    if !need_source && !need_sink {
        return Ok(AugmentedGraph {
            graph: graph.clone(),
            source: orig_sources[0],
            sink: orig_sinks[0],
            added_source: false,
            added_sink: false,
        });
    }

    let mut b = GraphBuilder::with_capacity(
        graph.node_count() + 2,
        graph.edge_count() + orig_sources.len() + orig_sinks.len(),
    );
    // Recreate original vertices in identifier order so ids are preserved.
    for node in graph.nodes() {
        b.add_node(node.name.clone());
    }
    for edge in graph.edges() {
        b.add_edge(edge.src, edge.dst, edge.interactions.clone())
            .unwrap();
    }
    let source = if need_source {
        let s = b.add_node(SYNTHETIC_SOURCE_NAME);
        for &orig in &orig_sources {
            b.add_interaction(s, orig, Interaction::synthetic_source())
                .unwrap();
        }
        s
    } else {
        orig_sources[0]
    };
    let sink = if need_sink {
        let t = b.add_node(SYNTHETIC_SINK_NAME);
        for &orig in &orig_sinks {
            b.add_interaction(orig, t, Interaction::synthetic_sink())
                .unwrap();
        }
        t
    } else {
        orig_sinks[0]
    };
    Ok(AugmentedGraph {
        graph: b.build(),
        source,
        sink,
        added_source: need_source,
        added_sink: need_sink,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The DAG of Figure 4(a): two sources (x, y) and two sinks (z, w).
    fn figure4() -> (TemporalGraph, [NodeId; 4]) {
        let mut b = GraphBuilder::new();
        let x = b.add_node("x");
        let y = b.add_node("y");
        let z = b.add_node("z");
        let w = b.add_node("w");
        b.add_pairs(x, z, &[(1, 5.0)]).unwrap();
        b.add_pairs(y, z, &[(2, 3.0)]).unwrap();
        b.add_pairs(y, w, &[(5, 1.0)]).unwrap();
        (b.build(), [x, y, z, w])
    }

    #[test]
    fn sources_and_sinks_detection() {
        let (g, [x, y, z, w]) = figure4();
        assert_eq!(sources(&g), vec![x, y]);
        assert_eq!(sinks(&g), vec![z, w]);
    }

    #[test]
    fn endpoints_on_single_source_sink_graph() {
        let mut b = GraphBuilder::new();
        let s = b.add_node("s");
        let t = b.add_node("t");
        b.add_pairs(s, t, &[(1, 1.0)]).unwrap();
        let g = b.build();
        let info = endpoints(&g).unwrap();
        assert_eq!(info.source, s);
        assert_eq!(info.sink, t);
    }

    #[test]
    fn endpoints_rejects_multiple_sources() {
        let (g, _) = figure4();
        assert!(matches!(
            endpoints(&g),
            Err(GraphError::NoUniqueSource { found: 2 })
        ));
    }

    #[test]
    fn endpoints_rejects_cycles() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a");
        let c = b.add_node("c");
        b.add_pairs(a, c, &[(1, 1.0)]).unwrap();
        b.add_pairs(c, a, &[(2, 1.0)]).unwrap();
        let g = b.build();
        assert_eq!(endpoints(&g), Err(GraphError::NotADag));
    }

    #[test]
    fn augmentation_adds_synthetic_endpoints() {
        let (g, [x, y, z, w]) = figure4();
        let aug = augment_with_synthetic_endpoints(&g).unwrap();
        assert!(aug.added_source);
        assert!(aug.added_sink);
        assert_eq!(aug.graph.node_count(), 6);
        assert_eq!(aug.graph.edge_count(), 3 + 2 + 2);
        // Synthetic source connects to both original sources with unbounded
        // earliest interactions.
        let s = aug.source;
        for orig in [x, y] {
            let e = aug
                .graph
                .find_edge(s, orig)
                .expect("edge from synthetic source");
            let ints = &aug.graph.edge(e).interactions;
            assert_eq!(ints.len(), 1);
            assert!(ints[0].is_unbounded());
            assert_eq!(ints[0].time, i64::MIN);
        }
        // Synthetic sink reachable from both original sinks.
        let t = aug.sink;
        for orig in [z, w] {
            let e = aug
                .graph
                .find_edge(orig, t)
                .expect("edge to synthetic sink");
            let ints = &aug.graph.edge(e).interactions;
            assert_eq!(ints.len(), 1);
            assert!(ints[0].is_unbounded());
            assert_eq!(ints[0].time, i64::MAX);
        }
        // The augmented graph now has unique endpoints.
        let info = endpoints(&aug.graph).unwrap();
        assert_eq!(info.source, aug.source);
        assert_eq!(info.sink, aug.sink);
        aug.graph.validate().unwrap();
    }

    #[test]
    fn augmentation_is_identity_when_endpoints_unique() {
        let mut b = GraphBuilder::new();
        let s = b.add_node("s");
        let m = b.add_node("m");
        let t = b.add_node("t");
        b.add_pairs(s, m, &[(1, 2.0)]).unwrap();
        b.add_pairs(m, t, &[(2, 2.0)]).unwrap();
        let g = b.build();
        let aug = augment_with_synthetic_endpoints(&g).unwrap();
        assert!(!aug.added_source);
        assert!(!aug.added_sink);
        assert_eq!(aug.graph.node_count(), 3);
        assert_eq!(aug.source, s);
        assert_eq!(aug.sink, t);
    }

    #[test]
    fn augmentation_rejects_cyclic_graphs() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a");
        let c = b.add_node("c");
        b.add_pairs(a, c, &[(1, 1.0)]).unwrap();
        b.add_pairs(c, a, &[(2, 1.0)]).unwrap();
        let g = b.build();
        assert!(matches!(
            augment_with_synthetic_endpoints(&g),
            Err(GraphError::NotADag)
        ));
    }

    #[test]
    fn original_node_ids_are_preserved() {
        let (g, [x, y, ..]) = figure4();
        let aug = augment_with_synthetic_endpoints(&g).unwrap();
        assert_eq!(aug.graph.node(x).name, "x");
        assert_eq!(aug.graph.node(y).name, "y");
    }
}
