//! Interactions — the `(t, q)` pairs carried by edges — and helpers for
//! working with time-sorted interaction sequences.

use crate::ids::{Quantity, Time};
use serde::{DeError, Deserialize, Serialize, Value};
use std::cmp::Ordering;

/// The tagged string both interchange formats use for an infinite quantity
/// (synthetic source/sink interactions). JSON has no literal for infinity
/// (upstream `serde_json` writes `null`, which is lossy), so the quantity
/// field is either a number or this string — and the compact text format
/// uses the same token, so the two formats agree.
pub const INFINITE_QUANTITY_TOKEN: &str = "inf";

/// A single interaction: at time [`Interaction::time`], the quantity
/// [`Interaction::quantity`] is transferred from the source vertex of the
/// owning edge to its destination vertex.
///
/// Interactions on an edge are kept sorted by time (ties broken by quantity,
/// then insertion order) so that every algorithm can replay them
/// chronologically.
#[derive(Copy, Clone, PartialEq)]
pub struct Interaction {
    /// Timestamp at which the transfer happens.
    pub time: Time,
    /// Quantity transferred (non-negative; `f64::INFINITY` for synthetic
    /// source/sink interactions).
    pub quantity: Quantity,
}

// Hand-written serde impls (instead of the derive) so that infinite
// quantities round-trip losslessly as the tagged string
// [`INFINITE_QUANTITY_TOKEN`] instead of JSON `null`. With registry serde
// this would be a `#[serde(with = ...)]` field helper; the vendored shim's
// derive does not support that attribute, so the whole struct is mapped by
// hand (the `Value` shape matches what the derive would emit for the finite
// case).
impl Serialize for Interaction {
    fn to_value(&self) -> Value {
        let quantity = if self.quantity.is_finite() {
            Value::Float(self.quantity)
        } else {
            Value::Str(INFINITE_QUANTITY_TOKEN.to_string())
        };
        Value::Object(vec![
            ("time".to_string(), Value::Int(self.time)),
            ("quantity".to_string(), quantity),
        ])
    }
}

impl Deserialize for Interaction {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let Value::Object(_) = value else {
            return Err(DeError::new("expected an interaction object"));
        };
        let time = match value.get("time") {
            Some(v) => Time::from_value(v)?,
            None => return Err(DeError::new("interaction missing `time`")),
        };
        let quantity = match value.get("quantity") {
            Some(Value::Str(s)) if s == INFINITE_QUANTITY_TOKEN => Quantity::INFINITY,
            Some(Value::Str(s)) => {
                return Err(DeError::new(format!(
                    "invalid quantity string `{s}` (only `{INFINITE_QUANTITY_TOKEN}` is allowed)"
                )))
            }
            // `Null` is accepted for backward compatibility with fixtures
            // written before quantities were tagged (upstream serde_json
            // serializes non-finite floats as `null`).
            Some(v) => Quantity::from_value(v)?,
            None => return Err(DeError::new("interaction missing `quantity`")),
        };
        if quantity.is_nan() || quantity < 0.0 {
            return Err(DeError::new(format!(
                "interaction quantity must be non-negative, got {quantity}"
            )));
        }
        Ok(Interaction { time, quantity })
    }
}

impl Interaction {
    /// Creates a new interaction.
    ///
    /// # Panics
    /// Panics (in debug builds) if `quantity` is negative or NaN.
    #[inline]
    pub fn new(time: Time, quantity: Quantity) -> Self {
        debug_assert!(
            !quantity.is_nan() && quantity >= 0.0,
            "interaction quantity must be a non-negative number, got {quantity}"
        );
        Interaction { time, quantity }
    }

    /// The synthetic interaction placed on edges out of the synthetic source
    /// vertex: smallest possible timestamp, infinite quantity (Figure 4 of
    /// the paper).
    #[inline]
    pub fn synthetic_source() -> Self {
        Interaction {
            time: Time::MIN,
            quantity: Quantity::INFINITY,
        }
    }

    /// The synthetic interaction placed on edges into the synthetic sink
    /// vertex: largest possible timestamp, infinite quantity (Figure 4 of
    /// the paper).
    #[inline]
    pub fn synthetic_sink() -> Self {
        Interaction {
            time: Time::MAX,
            quantity: Quantity::INFINITY,
        }
    }

    /// Whether this interaction carries an infinite quantity (synthetic
    /// source/sink edges only).
    #[inline]
    pub fn is_unbounded(&self) -> bool {
        self.quantity.is_infinite()
    }

    /// Total ordering used to sort interaction sequences: by time, then by
    /// quantity (both ascending). Quantities are finite or `+inf`, never NaN,
    /// so the ordering is total in practice.
    #[inline]
    pub fn chronological_cmp(&self, other: &Self) -> Ordering {
        self.time.cmp(&other.time).then(
            self.quantity
                .partial_cmp(&other.quantity)
                .unwrap_or(Ordering::Equal),
        )
    }
}

impl std::fmt::Debug for Interaction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.time, self.quantity)
    }
}

/// Sorts a sequence of interactions chronologically (stable).
pub fn sort_chronologically(interactions: &mut [Interaction]) {
    interactions.sort_by(Interaction::chronological_cmp);
}

/// Returns `true` if the sequence is sorted chronologically.
pub fn is_chronological(interactions: &[Interaction]) -> bool {
    interactions
        .windows(2)
        .all(|w| w[0].chronological_cmp(&w[1]) != Ordering::Greater)
}

/// Total quantity carried by a sequence of interactions.
///
/// Infinite interactions make the total infinite.
pub fn total_quantity(interactions: &[Interaction]) -> Quantity {
    interactions.iter().map(|i| i.quantity).sum()
}

/// Merges two chronologically sorted interaction sequences into a single
/// chronologically sorted sequence (used when parallel edges are merged,
/// e.g. during graph simplification).
pub fn merge_sorted(a: &[Interaction], b: &[Interaction]) -> Vec<Interaction> {
    debug_assert!(is_chronological(a), "left sequence not sorted");
    debug_assert!(is_chronological(b), "right sequence not sorted");
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        if a[i].chronological_cmp(&b[j]) != Ordering::Greater {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// The earliest timestamp in a sequence, if any.
pub fn min_time(interactions: &[Interaction]) -> Option<Time> {
    interactions.iter().map(|i| i.time).min()
}

/// The latest timestamp in a sequence, if any.
pub fn max_time(interactions: &[Interaction]) -> Option<Time> {
    interactions.iter().map(|i| i.time).max()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(pairs: &[(Time, Quantity)]) -> Vec<Interaction> {
        pairs.iter().map(|&(t, q)| Interaction::new(t, q)).collect()
    }

    #[test]
    fn new_and_accessors() {
        let i = Interaction::new(5, 3.5);
        assert_eq!(i.time, 5);
        assert_eq!(i.quantity, 3.5);
        assert!(!i.is_unbounded());
    }

    #[test]
    fn synthetic_interactions_are_unbounded_and_extreme() {
        let s = Interaction::synthetic_source();
        let t = Interaction::synthetic_sink();
        assert!(s.is_unbounded());
        assert!(t.is_unbounded());
        assert_eq!(s.time, Time::MIN);
        assert_eq!(t.time, Time::MAX);
        assert!(s.time < t.time);
    }

    #[test]
    fn sort_and_check_chronological() {
        let mut v = seq(&[(5, 1.0), (1, 2.0), (3, 4.0)]);
        assert!(!is_chronological(&v));
        sort_chronologically(&mut v);
        assert!(is_chronological(&v));
        assert_eq!(v.iter().map(|i| i.time).collect::<Vec<_>>(), vec![1, 3, 5]);
    }

    #[test]
    fn ties_sorted_by_quantity() {
        let mut v = seq(&[(2, 9.0), (2, 1.0)]);
        sort_chronologically(&mut v);
        assert_eq!(v[0].quantity, 1.0);
        assert_eq!(v[1].quantity, 9.0);
        assert!(is_chronological(&v));
    }

    #[test]
    fn total_quantity_sums() {
        let v = seq(&[(1, 2.0), (2, 3.5), (9, 0.5)]);
        assert_eq!(total_quantity(&v), 6.0);
        assert_eq!(total_quantity(&[]), 0.0);
    }

    #[test]
    fn total_quantity_with_infinity() {
        let v = vec![Interaction::new(1, 2.0), Interaction::synthetic_sink()];
        assert!(total_quantity(&v).is_infinite());
    }

    #[test]
    fn merge_sorted_interleaves() {
        let a = seq(&[(1, 1.0), (4, 2.0), (9, 3.0)]);
        let b = seq(&[(2, 5.0), (4, 1.0), (10, 7.0)]);
        let m = merge_sorted(&a, &b);
        assert_eq!(m.len(), 6);
        assert!(is_chronological(&m));
        assert_eq!(
            m.iter().map(|i| i.time).collect::<Vec<_>>(),
            vec![1, 2, 4, 4, 9, 10]
        );
    }

    #[test]
    fn merge_with_empty() {
        let a = seq(&[(1, 1.0)]);
        assert_eq!(merge_sorted(&a, &[]), a);
        assert_eq!(merge_sorted(&[], &a), a);
    }

    #[test]
    fn serde_roundtrip_finite_and_infinite() {
        let finite = Interaction::new(5, 3.5);
        let back = Interaction::from_value(&finite.to_value()).unwrap();
        assert_eq!(back, finite);

        let inf = Interaction::synthetic_source();
        let v = inf.to_value();
        // The infinite quantity is a tagged string, not null.
        assert_eq!(
            v.get("quantity"),
            Some(&serde::Value::Str(INFINITE_QUANTITY_TOKEN.to_string()))
        );
        let back = Interaction::from_value(&v).unwrap();
        assert_eq!(back.time, inf.time);
        assert!(back.quantity.is_infinite());
    }

    #[test]
    fn serde_rejects_garbage() {
        use serde::Value;
        assert!(Interaction::from_value(&Value::Null).is_err());
        let missing_q = Value::Object(vec![("time".into(), Value::Int(1))]);
        assert!(Interaction::from_value(&missing_q).is_err());
        let bad_tag = Value::Object(vec![
            ("time".into(), Value::Int(1)),
            ("quantity".into(), Value::Str("oops".into())),
        ]);
        assert!(Interaction::from_value(&bad_tag).is_err());
        let negative = Value::Object(vec![
            ("time".into(), Value::Int(1)),
            ("quantity".into(), Value::Float(-2.0)),
        ]);
        assert!(Interaction::from_value(&negative).is_err());
    }

    #[test]
    fn serde_accepts_legacy_null_quantity() {
        use serde::Value;
        let legacy = Value::Object(vec![
            ("time".into(), Value::Int(4)),
            ("quantity".into(), Value::Null),
        ]);
        let back = Interaction::from_value(&legacy).unwrap();
        assert!(back.quantity.is_infinite());
    }

    #[test]
    fn min_max_time() {
        let v = seq(&[(3, 1.0), (1, 1.0), (7, 1.0)]);
        assert_eq!(min_time(&v), Some(1));
        assert_eq!(max_time(&v), Some(7));
        assert_eq!(min_time(&[]), None);
        assert_eq!(max_time(&[]), None);
    }
}
