//! # tin-graph
//!
//! Data model for *temporal interaction networks*: directed graphs whose
//! edges carry time-ordered sequences of interactions `(t, q)` — at time `t`
//! a quantity `q` (money, bytes, messages, ...) is transferred from the
//! edge's source vertex to its destination vertex.
//!
//! This crate is the substrate shared by every other crate in the workspace:
//!
//! * [`TemporalGraph`] — the query-friendly network representation
//!   (node/edge tables plus in/out adjacency); append-only growth via
//!   [`TemporalGraph::apply`];
//! * [`GraphBuilder`] — incremental construction, merging parallel edges and
//!   keeping interaction sequences sorted;
//! * [`delta`] — validated append batches ([`GraphDelta`]) and their
//!   application, the streaming seam shared by full builds and live appends;
//! * [`events`] — a global, time-ordered view of all interactions (the order
//!   in which the greedy flow algorithm replays them);
//! * [`topo`] — topological ordering and DAG validation;
//! * [`dag`] — source/sink discovery and the synthetic source/sink
//!   augmentation of Figure 4 of the paper;
//! * [`view`] — subgraph extraction;
//! * [`io`] — (de)serialization in JSON and a compact text interchange format.
//!
//! ## Example
//!
//! The toy network of Figure 3 of the paper (source `s`, sink `t`):
//!
//! ```
//! use tin_graph::{GraphBuilder, Interaction, TemporalGraph};
//!
//! let mut b = GraphBuilder::new();
//! let s = b.add_node("s");
//! let y = b.add_node("y");
//! let z = b.add_node("z");
//! let t = b.add_node("t");
//! b.add_interaction(s, y, Interaction::new(1, 5.0)).unwrap();
//! b.add_interaction(s, z, Interaction::new(2, 3.0)).unwrap();
//! b.add_interaction(y, z, Interaction::new(3, 5.0)).unwrap();
//! b.add_interaction(y, t, Interaction::new(4, 4.0)).unwrap();
//! b.add_interaction(z, t, Interaction::new(5, 1.0)).unwrap();
//! let g: TemporalGraph = b.build();
//!
//! assert_eq!(g.node_count(), 4);
//! assert_eq!(g.edge_count(), 5);
//! assert_eq!(g.interaction_count(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod dag;
pub mod delta;
pub mod error;
pub mod events;
pub mod graph;
pub mod ids;
pub mod interaction;
pub mod io;
pub mod shard;
pub mod topo;
pub mod view;

pub use builder::GraphBuilder;
pub use dag::{augment_with_synthetic_endpoints, sinks, sources, AugmentedGraph, EndpointInfo};
pub use delta::{AppliedDelta, GraphDelta};
pub use error::{GraphError, ValidateError};
pub use events::{EventRef, Events};
pub use graph::{Edge, Node, TemporalGraph};
pub use ids::{EdgeId, NodeId, Quantity, Time};
pub use interaction::{Interaction, INFINITE_QUANTITY_TOKEN};
pub use io::{ParseMode, StreamingParser};
pub use shard::ShardedGraph;
pub use topo::{is_dag, topological_order, TopoError};
pub use view::{edge_induced_subgraph, induced_subgraph, SubgraphSpec};

/// Convenience prelude re-exporting the most frequently used items.
pub mod prelude {
    pub use crate::builder::GraphBuilder;
    pub use crate::graph::{Edge, Node, TemporalGraph};
    pub use crate::ids::{EdgeId, NodeId, Quantity, Time};
    pub use crate::interaction::Interaction;
}
