//! A global, chronologically ordered view of every interaction in a graph.
//!
//! The greedy flow algorithm (Section 4.1 of the paper) replays *all*
//! interactions of the network in time order, updating vertex buffers. This
//! module provides that ordering once, so every consumer agrees on the same
//! deterministic replay sequence (ties are broken by edge identifier and then
//! by position within the edge, which matches the order in which the builder
//! received the interactions for equal `(time, quantity)` pairs).

use crate::graph::TemporalGraph;
use crate::ids::{EdgeId, NodeId, Quantity, Time};

/// A reference to a single interaction in the global chronological order.
#[derive(Debug, Copy, Clone, PartialEq)]
pub struct EventRef {
    /// Edge carrying the interaction.
    pub edge: EdgeId,
    /// Index of the interaction within the edge's interaction list.
    pub index: usize,
    /// Source vertex of the interaction.
    pub src: NodeId,
    /// Destination vertex of the interaction.
    pub dst: NodeId,
    /// Timestamp of the interaction.
    pub time: Time,
    /// Quantity of the interaction.
    pub quantity: Quantity,
}

/// The chronologically sorted list of all interactions of a graph.
#[derive(Debug, Clone, Default)]
pub struct Events {
    events: Vec<EventRef>,
}

impl Events {
    /// Collects and sorts all interactions of `graph`.
    ///
    /// Complexity: `O(I log I)` for `I` interactions. Interactions within an
    /// edge are already sorted, so for graphs dominated by a few long edges a
    /// k-way merge would be asymptotically better, but the simple sort is
    /// faster in practice at the sizes the paper works with (≤ 10⁴ per
    /// subgraph, ≤ 10⁷–10⁸ per dataset).
    pub fn collect(graph: &TemporalGraph) -> Self {
        let mut events = Vec::with_capacity(graph.interaction_count());
        for eid in graph.edge_ids() {
            let edge = graph.edge(eid);
            for (index, inter) in edge.interactions.iter().enumerate() {
                events.push(EventRef {
                    edge: eid,
                    index,
                    src: edge.src,
                    dst: edge.dst,
                    time: inter.time,
                    quantity: inter.quantity,
                });
            }
        }
        events.sort_by(|a, b| {
            a.time
                .cmp(&b.time)
                .then(a.edge.cmp(&b.edge))
                .then(a.index.cmp(&b.index))
        });
        Events { events }
    }

    /// Number of interactions.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether there are no interactions.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events in chronological order.
    pub fn as_slice(&self) -> &[EventRef] {
        &self.events
    }

    /// Iterates over the events in chronological order.
    pub fn iter(&self) -> impl Iterator<Item = &EventRef> {
        self.events.iter()
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a EventRef;
    type IntoIter = std::slice::Iter<'a, EventRef>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::interaction::Interaction;

    #[test]
    fn events_are_chronological_across_edges() {
        let mut b = GraphBuilder::new();
        let s = b.add_node("s");
        let y = b.add_node("y");
        let z = b.add_node("z");
        b.add_pairs(s, y, &[(5, 1.0), (1, 2.0)]).unwrap();
        b.add_pairs(s, z, &[(3, 1.0)]).unwrap();
        b.add_pairs(y, z, &[(2, 1.0), (4, 1.0)]).unwrap();
        let g = b.build();
        let ev = Events::collect(&g);
        assert_eq!(ev.len(), 5);
        let times: Vec<_> = ev.iter().map(|e| e.time).collect();
        assert_eq!(times, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn event_refs_point_back_into_the_graph() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a");
        let c = b.add_node("c");
        b.add_pairs(a, c, &[(1, 7.0), (9, 2.0)]).unwrap();
        let g = b.build();
        let ev = Events::collect(&g);
        for e in &ev {
            let edge = g.edge(e.edge);
            assert_eq!(edge.src, e.src);
            assert_eq!(edge.dst, e.dst);
            assert_eq!(
                edge.interactions[e.index],
                Interaction::new(e.time, e.quantity)
            );
        }
    }

    #[test]
    fn ties_broken_by_edge_then_index() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a");
        let c = b.add_node("c");
        let d = b.add_node("d");
        b.add_pairs(a, c, &[(5, 1.0), (5, 2.0)]).unwrap();
        b.add_pairs(a, d, &[(5, 3.0)]).unwrap();
        let g = b.build();
        let ev = Events::collect(&g);
        assert_eq!(ev.len(), 3);
        // Same timestamp everywhere: order is edge 0 (both interactions in
        // stored order) then edge 1.
        assert_eq!(ev.as_slice()[0].quantity, 1.0);
        assert_eq!(ev.as_slice()[1].quantity, 2.0);
        assert_eq!(ev.as_slice()[2].quantity, 3.0);
    }

    #[test]
    fn empty_graph_has_no_events() {
        let g = GraphBuilder::new().build();
        let ev = Events::collect(&g);
        assert!(ev.is_empty());
        assert_eq!(ev.iter().count(), 0);
    }
}
