//! The [`TemporalGraph`] type: an immutable, query-friendly representation of
//! a temporal interaction network.

use crate::error::ValidateError;
use crate::ids::{EdgeId, NodeId, Quantity, Time};
use crate::interaction::{self, Interaction};
use serde::{DeError, Deserialize, Serialize, Value};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// A vertex of the network.
///
/// Vertices carry only an external `name` (account id, IP address, user id,
/// ...). The paper's graphs are otherwise unlabeled; all structure lives on
/// the edges.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// Human-readable external identifier of the vertex.
    pub name: String,
}

/// A directed edge `(src, dst)` carrying a chronologically sorted sequence of
/// interactions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Source vertex of every interaction on this edge.
    pub src: NodeId,
    /// Destination vertex of every interaction on this edge.
    pub dst: NodeId,
    /// Interactions, sorted chronologically.
    pub interactions: Vec<Interaction>,
}

impl Edge {
    /// Total quantity carried by the edge (sum over its interactions).
    pub fn total_quantity(&self) -> Quantity {
        interaction::total_quantity(&self.interactions)
    }

    /// Whether this edge slot is a tombstone: every interaction expired
    /// behind a sliding-window frontier. Tombstones keep their endpoints
    /// (so change reports stay interpretable) but are absent from the
    /// adjacency lists and the `(src, dst)` lookup, and their identifier is
    /// never reused — a later interaction on the same pair creates a fresh
    /// edge.
    #[inline]
    pub fn is_tombstone(&self) -> bool {
        self.interactions.is_empty()
    }

    /// Earliest interaction timestamp on this edge, if any.
    pub fn min_time(&self) -> Option<Time> {
        interaction::min_time(&self.interactions)
    }

    /// Latest interaction timestamp on this edge, if any.
    pub fn max_time(&self) -> Option<Time> {
        interaction::max_time(&self.interactions)
    }
}

/// An immutable temporal interaction network.
///
/// The representation is a pair of dense tables (nodes, edges) plus incoming
/// and outgoing adjacency lists and a `(src, dst) -> edge` index. Parallel
/// edges are merged at construction time: for every ordered vertex pair there
/// is at most one edge, whose interaction list is the chronologically sorted
/// union of all interactions added for that pair.
///
/// Construction goes through [`crate::GraphBuilder`]; transformation
/// algorithms (preprocessing, simplification, subgraph extraction) produce
/// new graphs rather than mutating in place.
#[derive(Debug, Clone)]
pub struct TemporalGraph {
    pub(crate) nodes: Vec<Node>,
    pub(crate) edges: Vec<Edge>,
    pub(crate) out_edges: Vec<Vec<EdgeId>>,
    pub(crate) in_edges: Vec<Vec<EdgeId>>,
    /// High-water mark of applied expiry frontiers: every interaction in the
    /// graph has `time >= frontier`. `None` until a windowed delta is
    /// applied (append-only graphs never set it).
    pub(crate) frontier: Option<Time>,
    /// Derived cache, skipped by serialization; restore with
    /// [`TemporalGraph::rebuild_index`].
    pub(crate) edge_index: HashMap<(NodeId, NodeId), EdgeId>,
    /// Lazy min-heap of `(candidate min time, edge)` pairs used by eviction
    /// to find expired interactions without scanning the edge table. Entries
    /// may be stale (the edge's true minimum moved up, or the edge was
    /// tombstoned); the invariant is one-sided: every live edge has at least
    /// one entry at or below its current minimum timestamp. Derived cache,
    /// skipped by serialization.
    pub(crate) expiry: BinaryHeap<Reverse<(Time, EdgeId)>>,
}

// Hand-written serde impls (instead of the derive) so that the `frontier`
// field is emitted only when a window has actually been applied: the
// vendored shim serializes `Option::None` as JSON `null`, which the
// interchange format reserves exclusively for lossy quantities, and the
// derive has no `skip_serializing_if`. Omission also keeps pre-window JSON
// readable: a missing `frontier` deserializes as `None`.
impl Serialize for TemporalGraph {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("nodes".to_string(), self.nodes.to_value()),
            ("edges".to_string(), self.edges.to_value()),
            ("out_edges".to_string(), self.out_edges.to_value()),
            ("in_edges".to_string(), self.in_edges.to_value()),
        ];
        if let Some(f) = self.frontier {
            fields.push(("frontier".to_string(), f.to_value()));
        }
        Value::Object(fields)
    }
}

impl Deserialize for TemporalGraph {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let Value::Object(_) = value else {
            return Err(DeError::new("expected an object for TemporalGraph"));
        };
        fn field<T: Deserialize>(value: &Value, name: &str) -> Result<T, DeError> {
            match value.get(name) {
                Some(v) => T::from_value(v),
                None => Err(DeError::new(format!(
                    "missing field `{name}` in TemporalGraph"
                ))),
            }
        }
        Ok(TemporalGraph {
            nodes: field(value, "nodes")?,
            edges: field(value, "edges")?,
            out_edges: field(value, "out_edges")?,
            in_edges: field(value, "in_edges")?,
            frontier: match value.get("frontier") {
                Some(v) => Option::from_value(v)?,
                None => None,
            },
            edge_index: HashMap::new(),
            expiry: BinaryHeap::new(),
        })
    }
}

// `BinaryHeap` has no `PartialEq`, and both the heap and the `(src, dst)`
// index are caches derived from the edge table — equality is defined over
// the canonical tables only.
impl PartialEq for TemporalGraph {
    fn eq(&self, other: &Self) -> bool {
        self.nodes == other.nodes
            && self.edges == other.edges
            && self.out_edges == other.out_edges
            && self.in_edges == other.in_edges
            && self.frontier == other.frontier
    }
}

impl TemporalGraph {
    /// Builds the adjacency structures from node and edge tables.
    ///
    /// `edges` must already be deduplicated per `(src, dst)` pair and each
    /// interaction list chronologically sorted; [`crate::GraphBuilder`]
    /// guarantees this.
    pub(crate) fn from_parts(nodes: Vec<Node>, edges: Vec<Edge>) -> Self {
        let n = nodes.len();
        let mut out_edges = vec![Vec::new(); n];
        let mut in_edges = vec![Vec::new(); n];
        let mut edge_index = HashMap::with_capacity(edges.len());
        let mut expiry = BinaryHeap::with_capacity(edges.len());
        for (i, e) in edges.iter().enumerate() {
            let id = EdgeId::from_index(i);
            out_edges[e.src.index()].push(id);
            in_edges[e.dst.index()].push(id);
            edge_index.insert((e.src, e.dst), id);
            if let Some(t) = e.min_time() {
                expiry.push(Reverse((t, id)));
            }
        }
        TemporalGraph {
            nodes,
            edges,
            out_edges,
            in_edges,
            frontier: None,
            edge_index,
            expiry,
        }
    }

    /// Rebuilds the caches derived from the edge table — the
    /// `(src, dst) -> edge` index and the eviction heap — both of which are
    /// skipped by serialization. Tombstoned edges are excluded from the
    /// lookup, exactly as eviction left them.
    pub fn rebuild_index(&mut self) {
        self.edge_index = self
            .edges
            .iter()
            .enumerate()
            .filter(|(_, e)| !e.is_tombstone())
            .map(|(i, e)| ((e.src, e.dst), EdgeId::from_index(i)))
            .collect();
        self.expiry = self
            .edges
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.min_time().map(|t| Reverse((t, EdgeId::from_index(i)))))
            .collect();
    }

    /// Number of vertices.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of (merged, directed) edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Total number of interactions over all edges.
    pub fn interaction_count(&self) -> usize {
        self.edges.iter().map(|e| e.interactions.len()).sum()
    }

    /// Total quantity transferred over all interactions of the graph.
    pub fn total_quantity(&self) -> Quantity {
        self.edges.iter().map(Edge::total_quantity).sum()
    }

    /// Iterates over all node identifiers.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// Iterates over all edge identifiers.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len()).map(EdgeId::from_index)
    }

    /// Returns the node table entry for `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Returns the edge table entry for `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// All nodes in identifier order.
    #[inline]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All edges in identifier order.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Identifiers of the edges leaving `v`.
    #[inline]
    pub fn out_edges(&self, v: NodeId) -> &[EdgeId] {
        &self.out_edges[v.index()]
    }

    /// Identifiers of the edges entering `v`.
    #[inline]
    pub fn in_edges(&self, v: NodeId) -> &[EdgeId] {
        &self.in_edges[v.index()]
    }

    /// Out-degree of `v` (number of distinct successors).
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out_edges[v.index()].len()
    }

    /// In-degree of `v` (number of distinct predecessors).
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.in_edges[v.index()].len()
    }

    /// Successor vertices of `v`.
    pub fn out_neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_edges[v.index()]
            .iter()
            .map(move |&e| self.edges[e.index()].dst)
    }

    /// Predecessor vertices of `v`.
    pub fn in_neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.in_edges[v.index()]
            .iter()
            .map(move |&e| self.edges[e.index()].src)
    }

    /// Looks up the edge from `src` to `dst`, if present.
    #[inline]
    pub fn find_edge(&self, src: NodeId, dst: NodeId) -> Option<EdgeId> {
        self.edge_index.get(&(src, dst)).copied()
    }

    /// Whether the graph contains an edge from `src` to `dst`.
    #[inline]
    pub fn has_edge(&self, src: NodeId, dst: NodeId) -> bool {
        self.edge_index.contains_key(&(src, dst))
    }

    /// Finds a node by its external name (linear scan; intended for small
    /// graphs and tests).
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .map(NodeId::from_index)
    }

    /// The earliest interaction timestamp in the whole graph.
    pub fn min_time(&self) -> Option<Time> {
        self.edges.iter().filter_map(Edge::min_time).min()
    }

    /// The latest interaction timestamp in the whole graph.
    pub fn max_time(&self) -> Option<Time> {
        self.edges.iter().filter_map(Edge::max_time).max()
    }

    /// The expiry high-water mark: every interaction in the graph has
    /// `time >= frontier`. `None` for append-only graphs (no windowed delta
    /// was ever applied).
    #[inline]
    pub fn frontier(&self) -> Option<Time> {
        self.frontier
    }

    /// Whether edge `id` is a tombstone (see [`Edge::is_tombstone`]).
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[inline]
    pub fn is_tombstone(&self, id: EdgeId) -> bool {
        self.edges[id.index()].is_tombstone()
    }

    /// Number of live (non-tombstoned) edges. [`TemporalGraph::edge_count`]
    /// keeps counting tombstone slots because identifiers are never reused.
    pub fn live_edge_count(&self) -> usize {
        self.edges.iter().filter(|e| !e.is_tombstone()).count()
    }

    /// Number of vertices with at least one live incident edge. Vertices
    /// whose every edge expired stay in the node table (ids and names are
    /// never reused) but stop counting here.
    pub fn live_node_count(&self) -> usize {
        (0..self.nodes.len())
            .filter(|&i| !self.out_edges[i].is_empty() || !self.in_edges[i].is_empty())
            .count()
    }

    /// Checks internal consistency (adjacency lists, sorted interactions,
    /// index coherence, tombstone unlinking, frontier respected). Used by
    /// tests, debug assertions, and snapshot recovery — the typed error lets
    /// callers distinguish unrepairable edge-table corruption from link
    /// drift that [`TemporalGraph::rebuild_index`] can fix (see
    /// [`ValidateError::is_data_corruption`]).
    pub fn validate(&self) -> Result<(), ValidateError> {
        let mut live = 0usize;
        for (i, e) in self.edges.iter().enumerate() {
            let id = EdgeId::from_index(i);
            if e.src.index() >= self.nodes.len() || e.dst.index() >= self.nodes.len() {
                return Err(ValidateError::NodeOutOfRange { edge: id });
            }
            if !interaction::is_chronological(&e.interactions) {
                return Err(ValidateError::UnsortedInteractions { edge: id });
            }
            if let (Some(f), Some(t)) = (self.frontier, e.min_time()) {
                if t < f {
                    return Err(ValidateError::FrontierViolation {
                        edge: id,
                        time: t,
                        frontier: f,
                    });
                }
            }
            if e.is_tombstone() {
                // Tombstones keep their slot but must be fully unlinked.
                if self.out_edges[e.src.index()].contains(&id)
                    || self.in_edges[e.dst.index()].contains(&id)
                {
                    return Err(ValidateError::TombstoneLinked { edge: id });
                }
                if self.edge_index.get(&(e.src, e.dst)) == Some(&id) {
                    return Err(ValidateError::TombstoneIndexed { edge: id });
                }
                continue;
            }
            live += 1;
            if !self.out_edges[e.src.index()].contains(&id) {
                return Err(ValidateError::MissingFromOutAdjacency {
                    edge: id,
                    node: e.src,
                });
            }
            if !self.in_edges[e.dst.index()].contains(&id) {
                return Err(ValidateError::MissingFromInAdjacency {
                    edge: id,
                    node: e.dst,
                });
            }
            if self.edge_index.get(&(e.src, e.dst)) != Some(&id) {
                return Err(ValidateError::IndexInconsistent { edge: id });
            }
        }
        let adj_total: usize = self.out_edges.iter().map(Vec::len).sum();
        if adj_total != live {
            return Err(ValidateError::OutAdjacencyCount {
                linked: adj_total,
                live,
            });
        }
        let adj_total_in: usize = self.in_edges.iter().map(Vec::len).sum();
        if adj_total_in != live {
            return Err(ValidateError::InAdjacencyCount {
                linked: adj_total_in,
                live,
            });
        }
        Ok(())
    }

    /// Reassembles a graph from snapshot parts: the canonical tables (nodes,
    /// edges — tombstones included) and the expiry frontier.
    ///
    /// Unlike the builder path this accepts tombstoned edge slots: adjacency
    /// lists and the `(src, dst)` index are rebuilt from the live edges only,
    /// exactly as eviction left them before the snapshot was taken. The
    /// reassembled graph is validated before being returned, so corrupt
    /// snapshot payloads surface as a typed [`ValidateError`] instead of
    /// poisoning later queries.
    pub fn from_stored_parts(
        nodes: Vec<Node>,
        edges: Vec<Edge>,
        frontier: Option<Time>,
    ) -> Result<Self, ValidateError> {
        let n = nodes.len();
        let mut out_edges = vec![Vec::new(); n];
        let mut in_edges = vec![Vec::new(); n];
        let mut edge_index = HashMap::with_capacity(edges.len());
        let mut expiry = BinaryHeap::with_capacity(edges.len());
        for (i, e) in edges.iter().enumerate() {
            if e.is_tombstone() {
                continue;
            }
            let id = EdgeId::from_index(i);
            if e.src.index() >= n || e.dst.index() >= n {
                return Err(ValidateError::NodeOutOfRange { edge: id });
            }
            out_edges[e.src.index()].push(id);
            in_edges[e.dst.index()].push(id);
            edge_index.insert((e.src, e.dst), id);
            if let Some(t) = e.min_time() {
                expiry.push(Reverse((t, id)));
            }
        }
        let graph = TemporalGraph {
            nodes,
            edges,
            out_edges,
            in_edges,
            frontier,
            edge_index,
            expiry,
        };
        graph.validate()?;
        Ok(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn toy() -> TemporalGraph {
        // Figure 3 of the paper.
        let mut b = GraphBuilder::new();
        let s = b.add_node("s");
        let y = b.add_node("y");
        let z = b.add_node("z");
        let t = b.add_node("t");
        b.add_interaction(s, y, Interaction::new(1, 5.0)).unwrap();
        b.add_interaction(s, z, Interaction::new(2, 3.0)).unwrap();
        b.add_interaction(y, z, Interaction::new(3, 5.0)).unwrap();
        b.add_interaction(y, t, Interaction::new(4, 4.0)).unwrap();
        b.add_interaction(z, t, Interaction::new(5, 1.0)).unwrap();
        b.build()
    }

    #[test]
    fn counts() {
        let g = toy();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.interaction_count(), 5);
        assert_eq!(g.total_quantity(), 18.0);
        g.validate().unwrap();
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = toy();
        let s = g.node_by_name("s").unwrap();
        let y = g.node_by_name("y").unwrap();
        let t = g.node_by_name("t").unwrap();
        assert_eq!(g.out_degree(s), 2);
        assert_eq!(g.in_degree(s), 0);
        assert_eq!(g.out_degree(y), 2);
        assert_eq!(g.in_degree(y), 1);
        assert_eq!(g.in_degree(t), 2);
        assert_eq!(g.out_degree(t), 0);
        let succ: Vec<_> = g.out_neighbors(y).collect();
        assert_eq!(succ.len(), 2);
        assert!(succ.contains(&g.node_by_name("z").unwrap()));
        assert!(succ.contains(&t));
        let pred: Vec<_> = g.in_neighbors(t).collect();
        assert_eq!(pred.len(), 2);
    }

    #[test]
    fn edge_lookup() {
        let g = toy();
        let s = g.node_by_name("s").unwrap();
        let y = g.node_by_name("y").unwrap();
        let t = g.node_by_name("t").unwrap();
        assert!(g.has_edge(s, y));
        assert!(!g.has_edge(y, s));
        assert!(!g.has_edge(s, t));
        let e = g.find_edge(s, y).unwrap();
        assert_eq!(g.edge(e).interactions, vec![Interaction::new(1, 5.0)]);
    }

    #[test]
    fn time_span() {
        let g = toy();
        assert_eq!(g.min_time(), Some(1));
        assert_eq!(g.max_time(), Some(5));
    }

    #[test]
    fn edge_helpers() {
        let g = toy();
        let s = g.node_by_name("s").unwrap();
        let y = g.node_by_name("y").unwrap();
        let e = g.edge(g.find_edge(s, y).unwrap());
        assert_eq!(e.total_quantity(), 5.0);
        assert_eq!(e.min_time(), Some(1));
        assert_eq!(e.max_time(), Some(1));
    }

    #[test]
    fn node_by_name_missing() {
        let g = toy();
        assert!(g.node_by_name("nope").is_none());
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut g = toy();
        g.edge_index.clear();
        assert!(g.find_edge(NodeId(0), NodeId(1)).is_none());
        g.rebuild_index();
        assert!(g.find_edge(NodeId(0), NodeId(1)).is_some());
        g.validate().unwrap();
    }

    #[test]
    fn serde_roundtrip_via_json() {
        let g = toy();
        let s = serde_json::to_string(&g).unwrap();
        let mut back: TemporalGraph = serde_json::from_str(&s).unwrap();
        back.rebuild_index();
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.edge_count(), g.edge_count());
        assert_eq!(back.interaction_count(), g.interaction_count());
        back.validate().unwrap();
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.interaction_count(), 0);
        assert_eq!(g.min_time(), None);
        g.validate().unwrap();
    }

    #[test]
    fn validate_reports_typed_errors() {
        // Unsorted interactions: data corruption.
        let mut g = toy();
        g.edges[0].interactions = vec![Interaction::new(5, 1.0), Interaction::new(1, 1.0)];
        let err = g.validate().unwrap_err();
        assert_eq!(err, ValidateError::UnsortedInteractions { edge: EdgeId(0) });
        assert!(err.is_data_corruption());

        // Stale edge index entry: repairable drift.
        let mut g = toy();
        g.edge_index.clear();
        let err = g.validate().unwrap_err();
        assert_eq!(err, ValidateError::IndexInconsistent { edge: EdgeId(0) });
        assert!(!err.is_data_corruption());
        g.rebuild_index();
        g.validate().unwrap();

        // Frontier violation: data corruption.
        let mut g = toy();
        g.frontier = Some(3);
        let err = g.validate().unwrap_err();
        assert!(matches!(err, ValidateError::FrontierViolation { .. }));
        assert!(err.is_data_corruption());
    }

    #[test]
    fn from_stored_parts_roundtrips_and_validates() {
        let g = toy();
        let back =
            TemporalGraph::from_stored_parts(g.nodes.clone(), g.edges.clone(), g.frontier).unwrap();
        assert_eq!(back, g);
        back.validate().unwrap();

        // Tombstoned slots survive the round trip unlinked.
        let mut with_tomb = toy();
        let dead = EdgeId(1);
        with_tomb.edges[dead.index()].interactions.clear();
        with_tomb.rebuild_index();
        let src = with_tomb.edges[dead.index()].src;
        let dst = with_tomb.edges[dead.index()].dst;
        with_tomb.out_edges[src.index()].retain(|&e| e != dead);
        with_tomb.in_edges[dst.index()].retain(|&e| e != dead);
        with_tomb.validate().unwrap();
        let back = TemporalGraph::from_stored_parts(
            with_tomb.nodes.clone(),
            with_tomb.edges.clone(),
            with_tomb.frontier,
        )
        .unwrap();
        assert_eq!(back, with_tomb);
        assert!(back.is_tombstone(dead));
        assert!(back.find_edge(src, dst).is_none());

        // Corrupt payloads are rejected with a typed error.
        let mut bad_edges = g.edges.clone();
        bad_edges[0].src = NodeId(99);
        let err = TemporalGraph::from_stored_parts(g.nodes.clone(), bad_edges, None).unwrap_err();
        assert_eq!(err, ValidateError::NodeOutOfRange { edge: EdgeId(0) });
    }
}
