//! Subgraph extraction.
//!
//! Both the flow computation experiments (Section 6.2) and the pattern
//! matchers (Section 5) work on small subgraphs of a large interaction
//! network. This module provides vertex-induced and edge-induced extraction
//! that remaps node identifiers into a dense range while remembering the
//! original identifiers.

use crate::builder::GraphBuilder;
use crate::graph::TemporalGraph;
use crate::ids::{EdgeId, NodeId};
use std::collections::HashMap;

/// Description of an extracted subgraph: the new graph plus the mapping back
/// to the original vertex identifiers.
#[derive(Debug, Clone)]
pub struct SubgraphSpec {
    /// The extracted graph with densely renumbered vertices.
    pub graph: TemporalGraph,
    /// `original[i]` is the vertex of the parent graph that became node `i`.
    pub original: Vec<NodeId>,
    /// Map from original vertex id to the new id.
    pub mapping: HashMap<NodeId, NodeId>,
}

impl SubgraphSpec {
    /// Translates an original vertex id to the subgraph id, if included.
    pub fn to_sub(&self, original: NodeId) -> Option<NodeId> {
        self.mapping.get(&original).copied()
    }

    /// Translates a subgraph vertex id back to the original id.
    ///
    /// # Panics
    /// Panics if `sub` is out of range.
    pub fn to_original(&self, sub: NodeId) -> NodeId {
        self.original[sub.index()]
    }
}

/// Extracts the subgraph induced by a set of vertices: every edge of the
/// parent graph whose endpoints are both selected is kept with its full
/// interaction sequence.
pub fn induced_subgraph(graph: &TemporalGraph, vertices: &[NodeId]) -> SubgraphSpec {
    let mut mapping = HashMap::with_capacity(vertices.len());
    let mut original = Vec::with_capacity(vertices.len());
    let mut b = GraphBuilder::with_capacity(vertices.len(), vertices.len() * 2);
    for &v in vertices {
        if mapping.contains_key(&v) {
            continue;
        }
        let new_id = b.add_node(graph.node(v).name.clone());
        mapping.insert(v, new_id);
        original.push(v);
    }
    for &v in &original {
        let new_src = mapping[&v];
        for &eid in graph.out_edges(v) {
            let edge = graph.edge(eid);
            if let Some(&new_dst) = mapping.get(&edge.dst) {
                b.add_edge(new_src, new_dst, edge.interactions.clone())
                    .unwrap();
            }
        }
    }
    SubgraphSpec {
        graph: b.build(),
        original,
        mapping,
    }
}

/// Extracts the subgraph formed by a set of edges: exactly the listed edges
/// are kept (with their interaction sequences) along with their endpoints.
pub fn edge_induced_subgraph(graph: &TemporalGraph, edges: &[EdgeId]) -> SubgraphSpec {
    let mut mapping: HashMap<NodeId, NodeId> = HashMap::new();
    let mut original = Vec::new();
    let mut b = GraphBuilder::new();
    let get = |b: &mut GraphBuilder,
               mapping: &mut HashMap<NodeId, NodeId>,
               original: &mut Vec<NodeId>,
               v: NodeId,
               name: &str| {
        *mapping.entry(v).or_insert_with(|| {
            let id = b.add_node(name.to_string());
            original.push(v);
            id
        })
    };
    for &eid in edges {
        let edge = graph.edge(eid);
        let src = get(
            &mut b,
            &mut mapping,
            &mut original,
            edge.src,
            &graph.node(edge.src).name,
        );
        let dst = get(
            &mut b,
            &mut mapping,
            &mut original,
            edge.dst,
            &graph.node(edge.dst).name,
        );
        b.add_edge(src, dst, edge.interactions.clone()).unwrap();
    }
    SubgraphSpec {
        graph: b.build(),
        original,
        mapping,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::interaction::Interaction;

    fn parent() -> (TemporalGraph, Vec<NodeId>) {
        let mut b = GraphBuilder::new();
        let ids: Vec<_> = (0..5).map(|i| b.add_node(format!("v{i}"))).collect();
        b.add_pairs(ids[0], ids[1], &[(1, 1.0), (4, 2.0)]).unwrap();
        b.add_pairs(ids[1], ids[2], &[(2, 3.0)]).unwrap();
        b.add_pairs(ids[2], ids[3], &[(3, 4.0)]).unwrap();
        b.add_pairs(ids[3], ids[4], &[(5, 5.0)]).unwrap();
        b.add_pairs(ids[0], ids[4], &[(6, 6.0)]).unwrap();
        (b.build(), ids)
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let (g, ids) = parent();
        let sub = induced_subgraph(&g, &[ids[0], ids[1], ids[2]]);
        assert_eq!(sub.graph.node_count(), 3);
        assert_eq!(sub.graph.edge_count(), 2); // v0->v1, v1->v2
        assert_eq!(sub.graph.interaction_count(), 3);
        let v0 = sub.to_sub(ids[0]).unwrap();
        let v1 = sub.to_sub(ids[1]).unwrap();
        assert!(sub.graph.has_edge(v0, v1));
        assert_eq!(sub.to_original(v0), ids[0]);
        assert!(sub.to_sub(ids[4]).is_none());
        sub.graph.validate().unwrap();
    }

    #[test]
    fn induced_subgraph_with_duplicate_vertices() {
        let (g, ids) = parent();
        let sub = induced_subgraph(&g, &[ids[0], ids[0], ids[1]]);
        assert_eq!(sub.graph.node_count(), 2);
        assert_eq!(sub.graph.edge_count(), 1);
    }

    #[test]
    fn edge_induced_subgraph_keeps_exact_edges() {
        let (g, ids) = parent();
        let e01 = g.find_edge(ids[0], ids[1]).unwrap();
        let e04 = g.find_edge(ids[0], ids[4]).unwrap();
        let sub = edge_induced_subgraph(&g, &[e01, e04]);
        assert_eq!(sub.graph.node_count(), 3);
        assert_eq!(sub.graph.edge_count(), 2);
        assert_eq!(sub.graph.interaction_count(), 3);
        let names: Vec<_> = sub.graph.nodes().iter().map(|n| n.name.clone()).collect();
        assert!(names.contains(&"v0".to_string()));
        assert!(names.contains(&"v1".to_string()));
        assert!(names.contains(&"v4".to_string()));
        sub.graph.validate().unwrap();
    }

    #[test]
    fn edge_induced_subgraph_preserves_interactions() {
        let (g, ids) = parent();
        let e01 = g.find_edge(ids[0], ids[1]).unwrap();
        let sub = edge_induced_subgraph(&g, &[e01]);
        let v0 = sub.to_sub(ids[0]).unwrap();
        let v1 = sub.to_sub(ids[1]).unwrap();
        let e = sub.graph.edge(sub.graph.find_edge(v0, v1).unwrap());
        assert_eq!(
            e.interactions,
            vec![Interaction::new(1, 1.0), Interaction::new(4, 2.0)]
        );
    }

    #[test]
    fn empty_selection_yields_empty_graph() {
        let (g, _) = parent();
        let sub = induced_subgraph(&g, &[]);
        assert_eq!(sub.graph.node_count(), 0);
        assert_eq!(sub.graph.edge_count(), 0);
        let sub2 = edge_induced_subgraph(&g, &[]);
        assert_eq!(sub2.graph.node_count(), 0);
    }
}
