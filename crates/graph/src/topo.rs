//! Topological ordering, DAG validation and reachability.
//!
//! The maximum-flow machinery of the paper (preprocessing, simplification,
//! the LP formulation) operates on DAGs whose vertices are examined in
//! topological order. This module provides Kahn's algorithm plus small
//! reachability helpers shared by several crates.

use crate::graph::TemporalGraph;
use crate::ids::NodeId;
use std::collections::VecDeque;

/// Error returned when a topological order is requested for a cyclic graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopoError {
    /// Number of vertices that could not be ordered (they lie on or behind a
    /// directed cycle).
    pub unordered: usize,
}

impl std::fmt::Display for TopoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "graph contains a directed cycle ({} vertices unordered)",
            self.unordered
        )
    }
}

impl std::error::Error for TopoError {}

/// Computes a topological order of the graph's vertices using Kahn's
/// algorithm.
///
/// Vertices with equal precedence are emitted in ascending identifier order,
/// making the result deterministic. Returns [`TopoError`] if the graph
/// contains a directed cycle (self-loops included).
pub fn topological_order(graph: &TemporalGraph) -> Result<Vec<NodeId>, TopoError> {
    let n = graph.node_count();
    let mut in_deg: Vec<usize> = (0..n)
        .map(|i| graph.in_degree(NodeId::from_index(i)))
        .collect();
    // A BinaryHeap would give the smallest-id-first property directly, but a
    // deque plus the natural id ordering of the initial frontier is enough
    // for determinism and is cheaper.
    let mut queue: VecDeque<NodeId> = (0..n)
        .map(NodeId::from_index)
        .filter(|v| in_deg[v.index()] == 0)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for u in graph.out_neighbors(v) {
            in_deg[u.index()] -= 1;
            if in_deg[u.index()] == 0 {
                queue.push_back(u);
            }
        }
    }
    if order.len() == n {
        Ok(order)
    } else {
        Err(TopoError {
            unordered: n - order.len(),
        })
    }
}

/// Returns `true` if the graph is a directed acyclic graph.
pub fn is_dag(graph: &TemporalGraph) -> bool {
    topological_order(graph).is_ok()
}

/// Returns the set of vertices reachable from `start` by following edges
/// forwards (including `start` itself), as a boolean mask indexed by node id.
pub fn reachable_from(graph: &TemporalGraph, start: NodeId) -> Vec<bool> {
    let mut seen = vec![false; graph.node_count()];
    let mut stack = vec![start];
    seen[start.index()] = true;
    while let Some(v) = stack.pop() {
        for u in graph.out_neighbors(v) {
            if !seen[u.index()] {
                seen[u.index()] = true;
                stack.push(u);
            }
        }
    }
    seen
}

/// Returns the set of vertices that can reach `target` by following edges
/// forwards (including `target` itself), as a boolean mask indexed by node id.
pub fn reaching(graph: &TemporalGraph, target: NodeId) -> Vec<bool> {
    let mut seen = vec![false; graph.node_count()];
    let mut stack = vec![target];
    seen[target.index()] = true;
    while let Some(v) = stack.pop() {
        for u in graph.in_neighbors(v) {
            if !seen[u.index()] {
                seen[u.index()] = true;
                stack.push(u);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::interaction::Interaction;

    fn diamond() -> (TemporalGraph, [NodeId; 4]) {
        let mut b = GraphBuilder::new();
        let s = b.add_node("s");
        let y = b.add_node("y");
        let z = b.add_node("z");
        let t = b.add_node("t");
        for (u, v) in [(s, y), (s, z), (y, z), (y, t), (z, t)] {
            b.add_interaction(u, v, Interaction::new(1, 1.0)).unwrap();
        }
        (b.build(), [s, y, z, t])
    }

    #[test]
    fn topological_order_respects_edges() {
        let (g, [s, y, z, t]) = diamond();
        let order = topological_order(&g).unwrap();
        assert_eq!(order.len(), 4);
        let pos = |v: NodeId| order.iter().position(|&x| x == v).unwrap();
        assert!(pos(s) < pos(y));
        assert!(pos(s) < pos(z));
        assert!(pos(y) < pos(z));
        assert!(pos(y) < pos(t));
        assert!(pos(z) < pos(t));
        assert!(is_dag(&g));
    }

    #[test]
    fn cycle_is_detected() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a");
        let c = b.add_node("c");
        b.add_interaction(a, c, Interaction::new(1, 1.0)).unwrap();
        b.add_interaction(c, a, Interaction::new(2, 1.0)).unwrap();
        let g = b.build();
        assert!(!is_dag(&g));
        let err = topological_order(&g).unwrap_err();
        assert_eq!(err.unordered, 2);
        assert!(err.to_string().contains("cycle"));
    }

    #[test]
    fn self_loop_is_a_cycle() {
        // The builder refuses self-loops, but a deserialized graph can
        // still carry one; build it from raw parts like a deserializer.
        let g = TemporalGraph::from_parts(
            vec![crate::graph::Node { name: "a".into() }],
            vec![crate::graph::Edge {
                src: NodeId(0),
                dst: NodeId(0),
                interactions: vec![Interaction::new(1, 1.0)],
            }],
        );
        assert!(!is_dag(&g));
    }

    #[test]
    fn isolated_vertices_are_ordered() {
        let mut b = GraphBuilder::new();
        b.add_node("a");
        b.add_node("b");
        let g = b.build();
        let order = topological_order(&g).unwrap();
        assert_eq!(order.len(), 2);
    }

    #[test]
    fn reachability_masks() {
        let (g, [s, y, z, t]) = diamond();
        let fwd = reachable_from(&g, y);
        assert!(!fwd[s.index()]);
        assert!(fwd[y.index()]);
        assert!(fwd[z.index()]);
        assert!(fwd[t.index()]);
        let back = reaching(&g, z);
        assert!(back[s.index()]);
        assert!(back[y.index()]);
        assert!(back[z.index()]);
        assert!(!back[t.index()]);
    }

    #[test]
    fn empty_graph_topological_order() {
        let g = GraphBuilder::new().build();
        assert!(topological_order(&g).unwrap().is_empty());
        assert!(is_dag(&g));
    }
}
