//! Error types for graph construction and manipulation.

use crate::ids::{EdgeId, NodeId};
use std::fmt;

/// Errors that can be produced while constructing or transforming a
/// [`crate::TemporalGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node identifier referenced a node that does not exist.
    UnknownNode(NodeId),
    /// An edge identifier referenced an edge that does not exist.
    UnknownEdge(EdgeId),
    /// The operation requires a DAG but the graph contains a directed cycle.
    NotADag,
    /// The operation requires a single source (a vertex without incoming
    /// edges) but the graph has none or several.
    NoUniqueSource {
        /// Number of source candidates found.
        found: usize,
    },
    /// The operation requires a single sink (a vertex without outgoing
    /// edges) but the graph has none or several.
    NoUniqueSink {
        /// Number of sink candidates found.
        found: usize,
    },
    /// A self-loop `(v, v)` was supplied where it is not allowed.
    SelfLoop(NodeId),
    /// Parsing a textual graph representation failed.
    Parse {
        /// 1-based line number where the error occurred.
        line: usize,
        /// Human readable description of the problem.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode(n) => write!(f, "unknown node {n}"),
            GraphError::UnknownEdge(e) => write!(f, "unknown edge {e}"),
            GraphError::NotADag => write!(f, "graph is not a directed acyclic graph"),
            GraphError::NoUniqueSource { found } => {
                write!(f, "expected exactly one source vertex, found {found}")
            }
            GraphError::NoUniqueSink { found } => {
                write!(f, "expected exactly one sink vertex, found {found}")
            }
            GraphError::SelfLoop(n) => write!(f, "self loop on node {n} is not allowed"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert_eq!(
            GraphError::UnknownNode(NodeId(3)).to_string(),
            "unknown node n3"
        );
        assert_eq!(
            GraphError::UnknownEdge(EdgeId(1)).to_string(),
            "unknown edge e1"
        );
        assert!(GraphError::NotADag.to_string().contains("acyclic"));
        assert!(GraphError::NoUniqueSource { found: 2 }
            .to_string()
            .contains("found 2"));
        assert!(GraphError::NoUniqueSink { found: 0 }
            .to_string()
            .contains("found 0"));
        assert!(GraphError::SelfLoop(NodeId(0)).to_string().contains("n0"));
        let p = GraphError::Parse {
            line: 4,
            message: "bad token".into(),
        };
        assert!(p.to_string().contains("line 4"));
    }
}
