//! Error types for graph construction and manipulation.

use crate::ids::{EdgeId, NodeId};
use std::fmt;

/// Errors that can be produced while constructing or transforming a
/// [`crate::TemporalGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node identifier referenced a node that does not exist.
    UnknownNode(NodeId),
    /// An edge identifier referenced an edge that does not exist.
    UnknownEdge(EdgeId),
    /// The operation requires a DAG but the graph contains a directed cycle.
    NotADag,
    /// The operation requires a single source (a vertex without incoming
    /// edges) but the graph has none or several.
    NoUniqueSource {
        /// Number of source candidates found.
        found: usize,
    },
    /// The operation requires a single sink (a vertex without outgoing
    /// edges) but the graph has none or several.
    NoUniqueSink {
        /// Number of sink candidates found.
        found: usize,
    },
    /// A self-loop `(v, v)` was supplied where it is not allowed.
    SelfLoop(NodeId),
    /// Parsing a textual graph representation failed (syntax-level: the
    /// input is not well-formed JSON / not shaped like the format at all).
    Parse {
        /// 1-based line number where the error occurred.
        line: usize,
        /// Human readable description of the problem.
        message: String,
    },
    /// A record-level ingestion failure: the input is structurally a record
    /// stream, but one record is unusable (bad field, wrong field count,
    /// self-loop, negative quantity, ...). Carries enough position context
    /// to locate the offending field in a multi-GB source.
    Ingest {
        /// 1-based line number of the offending record.
        line: usize,
        /// 1-based column (field ordinal after column mapping) the failure
        /// was attributed to; `0` when the whole line is at fault.
        column: usize,
        /// Byte offset of the start of the offending line within the source.
        byte_offset: u64,
        /// Human readable description of the problem.
        message: String,
    },
    /// The input was well-formed but describes an inconsistent or
    /// unrepresentable graph (semantic validation failure), e.g. a JSON
    /// document whose edge table references missing vertices, or a graph
    /// whose vertex names cannot survive the text interchange format.
    Invalid {
        /// Human readable description of the inconsistency.
        message: String,
    },
    /// An underlying I/O operation failed while streaming a source.
    Io {
        /// Display form of the `std::io::Error`.
        message: String,
    },
}

impl GraphError {
    /// Convenience constructor mapping an [`std::io::Error`].
    pub fn from_io(e: std::io::Error) -> Self {
        GraphError::Io {
            message: e.to_string(),
        }
    }
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode(n) => write!(f, "unknown node {n}"),
            GraphError::UnknownEdge(e) => write!(f, "unknown edge {e}"),
            GraphError::NotADag => write!(f, "graph is not a directed acyclic graph"),
            GraphError::NoUniqueSource { found } => {
                write!(f, "expected exactly one source vertex, found {found}")
            }
            GraphError::NoUniqueSink { found } => {
                write!(f, "expected exactly one sink vertex, found {found}")
            }
            GraphError::SelfLoop(n) => write!(f, "self loop on node {n} is not allowed"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Ingest {
                line,
                column,
                byte_offset,
                message,
            } => {
                write!(f, "ingest error at line {line}")?;
                if *column > 0 {
                    write!(f, ", column {column}")?;
                }
                write!(f, " (byte offset {byte_offset}): {message}")
            }
            GraphError::Invalid { message } => write!(f, "invalid graph: {message}"),
            GraphError::Io { message } => write!(f, "i/o error: {message}"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert_eq!(
            GraphError::UnknownNode(NodeId(3)).to_string(),
            "unknown node n3"
        );
        assert_eq!(
            GraphError::UnknownEdge(EdgeId(1)).to_string(),
            "unknown edge e1"
        );
        assert!(GraphError::NotADag.to_string().contains("acyclic"));
        assert!(GraphError::NoUniqueSource { found: 2 }
            .to_string()
            .contains("found 2"));
        assert!(GraphError::NoUniqueSink { found: 0 }
            .to_string()
            .contains("found 0"));
        assert!(GraphError::SelfLoop(NodeId(0)).to_string().contains("n0"));
        let p = GraphError::Parse {
            line: 4,
            message: "bad token".into(),
        };
        assert!(p.to_string().contains("line 4"));
        let i = GraphError::Ingest {
            line: 7,
            column: 3,
            byte_offset: 120,
            message: "bad timestamp".into(),
        };
        let s = i.to_string();
        assert!(s.contains("line 7") && s.contains("column 3") && s.contains("120"));
        let whole_line = GraphError::Ingest {
            line: 2,
            column: 0,
            byte_offset: 10,
            message: "junk".into(),
        };
        assert!(!whole_line.to_string().contains("column"));
        assert!(GraphError::Invalid {
            message: "edge references missing vertex".into()
        }
        .to_string()
        .contains("invalid graph"));
        assert!(GraphError::from_io(std::io::Error::other("boom"))
            .to_string()
            .contains("boom"));
    }
}
