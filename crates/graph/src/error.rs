//! Error types for graph construction and manipulation.

use crate::ids::{EdgeId, NodeId, Time};
use std::fmt;

/// Errors that can be produced while constructing or transforming a
/// [`crate::TemporalGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node identifier referenced a node that does not exist.
    UnknownNode(NodeId),
    /// An edge identifier referenced an edge that does not exist.
    UnknownEdge(EdgeId),
    /// The operation requires a DAG but the graph contains a directed cycle.
    NotADag,
    /// The operation requires a single source (a vertex without incoming
    /// edges) but the graph has none or several.
    NoUniqueSource {
        /// Number of source candidates found.
        found: usize,
    },
    /// The operation requires a single sink (a vertex without outgoing
    /// edges) but the graph has none or several.
    NoUniqueSink {
        /// Number of sink candidates found.
        found: usize,
    },
    /// A self-loop `(v, v)` was supplied where it is not allowed.
    SelfLoop(NodeId),
    /// Parsing a textual graph representation failed (syntax-level: the
    /// input is not well-formed JSON / not shaped like the format at all).
    Parse {
        /// 1-based line number where the error occurred.
        line: usize,
        /// Human readable description of the problem.
        message: String,
    },
    /// A record-level ingestion failure: the input is structurally a record
    /// stream, but one record is unusable (bad field, wrong field count,
    /// self-loop, negative quantity, ...). Carries enough position context
    /// to locate the offending field in a multi-GB source.
    Ingest {
        /// 1-based line number of the offending record.
        line: usize,
        /// 1-based column (field ordinal after column mapping) the failure
        /// was attributed to; `0` when the whole line is at fault.
        column: usize,
        /// Byte offset of the start of the offending line within the source.
        byte_offset: u64,
        /// Human readable description of the problem.
        message: String,
    },
    /// The input was well-formed but describes an inconsistent or
    /// unrepresentable graph (semantic validation failure), e.g. a JSON
    /// document whose edge table references missing vertices, or a graph
    /// whose vertex names cannot survive the text interchange format.
    Invalid {
        /// Human readable description of the inconsistency.
        message: String,
    },
    /// An underlying I/O operation failed while streaming a source.
    Io {
        /// Display form of the `std::io::Error`.
        message: String,
    },
}

impl GraphError {
    /// Convenience constructor mapping an [`std::io::Error`].
    pub fn from_io(e: std::io::Error) -> Self {
        GraphError::Io {
            message: e.to_string(),
        }
    }
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode(n) => write!(f, "unknown node {n}"),
            GraphError::UnknownEdge(e) => write!(f, "unknown edge {e}"),
            GraphError::NotADag => write!(f, "graph is not a directed acyclic graph"),
            GraphError::NoUniqueSource { found } => {
                write!(f, "expected exactly one source vertex, found {found}")
            }
            GraphError::NoUniqueSink { found } => {
                write!(f, "expected exactly one sink vertex, found {found}")
            }
            GraphError::SelfLoop(n) => write!(f, "self loop on node {n} is not allowed"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Ingest {
                line,
                column,
                byte_offset,
                message,
            } => {
                write!(f, "ingest error at line {line}")?;
                if *column > 0 {
                    write!(f, ", column {column}")?;
                }
                write!(f, " (byte offset {byte_offset}): {message}")
            }
            GraphError::Invalid { message } => write!(f, "invalid graph: {message}"),
            GraphError::Io { message } => write!(f, "i/o error: {message}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A consistency violation found by [`crate::TemporalGraph::validate`].
///
/// The variants split into two classes that recovery code treats very
/// differently (see [`ValidateError::is_data_corruption`]):
///
/// * **data corruption** — the canonical edge table itself is damaged
///   (out-of-range endpoints, unsorted interactions, interactions behind the
///   expiry frontier). No amount of cache rebuilding can repair this; a
///   snapshot failing this way must be discarded.
/// * **link drift** — the edge table is intact but a derived or mirrored
///   structure (adjacency lists, the `(src, dst)` index) disagrees with it.
///   These are repairable by recomputing the links from the edge table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValidateError {
    /// An edge references a node outside the node table.
    NodeOutOfRange {
        /// The offending edge.
        edge: EdgeId,
    },
    /// An edge's interaction list is not chronologically sorted.
    UnsortedInteractions {
        /// The offending edge.
        edge: EdgeId,
    },
    /// An edge holds an interaction older than the expiry frontier.
    FrontierViolation {
        /// The offending edge.
        edge: EdgeId,
        /// Timestamp of the stale interaction.
        time: Time,
        /// The graph's expiry frontier.
        frontier: Time,
    },
    /// A tombstoned edge is still linked in an adjacency list.
    TombstoneLinked {
        /// The offending edge.
        edge: EdgeId,
    },
    /// A tombstoned edge is still present in the `(src, dst)` index.
    TombstoneIndexed {
        /// The offending edge.
        edge: EdgeId,
    },
    /// A live edge is missing from the out-adjacency of its source.
    MissingFromOutAdjacency {
        /// The offending edge.
        edge: EdgeId,
        /// The source vertex whose adjacency list is incomplete.
        node: NodeId,
    },
    /// A live edge is missing from the in-adjacency of its destination.
    MissingFromInAdjacency {
        /// The offending edge.
        edge: EdgeId,
        /// The destination vertex whose adjacency list is incomplete.
        node: NodeId,
    },
    /// The `(src, dst)` index maps a live edge's pair to a different edge
    /// (or to nothing).
    IndexInconsistent {
        /// The offending edge.
        edge: EdgeId,
    },
    /// The total out-adjacency size disagrees with the live edge count.
    OutAdjacencyCount {
        /// Entries across all out-adjacency lists.
        linked: usize,
        /// Live (non-tombstoned) edges in the edge table.
        live: usize,
    },
    /// The total in-adjacency size disagrees with the live edge count.
    InAdjacencyCount {
        /// Entries across all in-adjacency lists.
        linked: usize,
        /// Live (non-tombstoned) edges in the edge table.
        live: usize,
    },
}

impl ValidateError {
    /// Whether the canonical edge table itself is damaged (as opposed to
    /// drift in the derived/mirrored link structures).
    ///
    /// Recovery code uses this to pick between a repair (rebuild adjacency
    /// and index from the edge table, then re-validate) and discarding the
    /// state entirely: data corruption cannot be repaired.
    pub fn is_data_corruption(&self) -> bool {
        matches!(
            self,
            ValidateError::NodeOutOfRange { .. }
                | ValidateError::UnsortedInteractions { .. }
                | ValidateError::FrontierViolation { .. }
        )
    }

    /// The edge the violation was attributed to, when there is one.
    pub fn edge(&self) -> Option<EdgeId> {
        match self {
            ValidateError::NodeOutOfRange { edge }
            | ValidateError::UnsortedInteractions { edge }
            | ValidateError::FrontierViolation { edge, .. }
            | ValidateError::TombstoneLinked { edge }
            | ValidateError::TombstoneIndexed { edge }
            | ValidateError::MissingFromOutAdjacency { edge, .. }
            | ValidateError::MissingFromInAdjacency { edge, .. }
            | ValidateError::IndexInconsistent { edge } => Some(*edge),
            ValidateError::OutAdjacencyCount { .. } | ValidateError::InAdjacencyCount { .. } => {
                None
            }
        }
    }
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::NodeOutOfRange { edge } => {
                write!(f, "edge {edge} references an out-of-range node")
            }
            ValidateError::UnsortedInteractions { edge } => {
                write!(f, "edge {edge} interactions are not chronologically sorted")
            }
            ValidateError::FrontierViolation {
                edge,
                time,
                frontier,
            } => write!(
                f,
                "edge {edge} holds an interaction at {time}, before the frontier {frontier}"
            ),
            ValidateError::TombstoneLinked { edge } => {
                write!(f, "tombstoned edge {edge} still in an adjacency list")
            }
            ValidateError::TombstoneIndexed { edge } => {
                write!(f, "tombstoned edge {edge} still in the edge index")
            }
            ValidateError::MissingFromOutAdjacency { edge, node } => {
                write!(f, "edge {edge} missing from out-adjacency of {node}")
            }
            ValidateError::MissingFromInAdjacency { edge, node } => {
                write!(f, "edge {edge} missing from in-adjacency of {node}")
            }
            ValidateError::IndexInconsistent { edge } => {
                write!(f, "edge index inconsistent for {edge}")
            }
            ValidateError::OutAdjacencyCount { linked, live } => write!(
                f,
                "out-adjacency size {linked} does not match live edge count {live}"
            ),
            ValidateError::InAdjacencyCount { linked, live } => write!(
                f,
                "in-adjacency size {linked} does not match live edge count {live}"
            ),
        }
    }
}

impl std::error::Error for ValidateError {}

impl From<ValidateError> for GraphError {
    fn from(e: ValidateError) -> Self {
        GraphError::Invalid {
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert_eq!(
            GraphError::UnknownNode(NodeId(3)).to_string(),
            "unknown node n3"
        );
        assert_eq!(
            GraphError::UnknownEdge(EdgeId(1)).to_string(),
            "unknown edge e1"
        );
        assert!(GraphError::NotADag.to_string().contains("acyclic"));
        assert!(GraphError::NoUniqueSource { found: 2 }
            .to_string()
            .contains("found 2"));
        assert!(GraphError::NoUniqueSink { found: 0 }
            .to_string()
            .contains("found 0"));
        assert!(GraphError::SelfLoop(NodeId(0)).to_string().contains("n0"));
        let p = GraphError::Parse {
            line: 4,
            message: "bad token".into(),
        };
        assert!(p.to_string().contains("line 4"));
        let i = GraphError::Ingest {
            line: 7,
            column: 3,
            byte_offset: 120,
            message: "bad timestamp".into(),
        };
        let s = i.to_string();
        assert!(s.contains("line 7") && s.contains("column 3") && s.contains("120"));
        let whole_line = GraphError::Ingest {
            line: 2,
            column: 0,
            byte_offset: 10,
            message: "junk".into(),
        };
        assert!(!whole_line.to_string().contains("column"));
        assert!(GraphError::Invalid {
            message: "edge references missing vertex".into()
        }
        .to_string()
        .contains("invalid graph"));
        assert!(GraphError::from_io(std::io::Error::other("boom"))
            .to_string()
            .contains("boom"));
    }

    #[test]
    fn validate_error_classification() {
        let corrupt = [
            ValidateError::NodeOutOfRange { edge: EdgeId(1) },
            ValidateError::UnsortedInteractions { edge: EdgeId(2) },
            ValidateError::FrontierViolation {
                edge: EdgeId(3),
                time: 5,
                frontier: 9,
            },
        ];
        for e in corrupt {
            assert!(e.is_data_corruption(), "{e} should be data corruption");
            assert!(e.edge().is_some());
        }
        let drift = [
            ValidateError::TombstoneLinked { edge: EdgeId(0) },
            ValidateError::TombstoneIndexed { edge: EdgeId(0) },
            ValidateError::MissingFromOutAdjacency {
                edge: EdgeId(0),
                node: NodeId(1),
            },
            ValidateError::MissingFromInAdjacency {
                edge: EdgeId(0),
                node: NodeId(1),
            },
            ValidateError::IndexInconsistent { edge: EdgeId(0) },
            ValidateError::OutAdjacencyCount { linked: 3, live: 2 },
            ValidateError::InAdjacencyCount { linked: 1, live: 2 },
        ];
        for e in drift {
            assert!(!e.is_data_corruption(), "{e} should be repairable drift");
        }
    }

    #[test]
    fn validate_error_display_and_conversion() {
        let e = ValidateError::FrontierViolation {
            edge: EdgeId(4),
            time: 3,
            frontier: 10,
        };
        let s = e.to_string();
        assert!(s.contains("e4") && s.contains('3') && s.contains("10"));
        let g: GraphError = e.into();
        assert!(matches!(g, GraphError::Invalid { ref message } if message.contains("e4")));
        assert_eq!(
            ValidateError::NodeOutOfRange { edge: EdgeId(9) }.to_string(),
            "edge e9 references an out-of-range node"
        );
        assert!(ValidateError::OutAdjacencyCount { linked: 3, live: 2 }
            .edge()
            .is_none());
    }
}
