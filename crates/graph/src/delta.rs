//! Appending to a [`TemporalGraph`]: validated deltas and their application.
//!
//! The paper's setting is a *log*: interactions keep arriving. This module is
//! the seam that lets every snapshot consumer become a streaming consumer —
//! a [`GraphDelta`] is a validated batch of new vertices and interactions,
//! and [`TemporalGraph::apply`] merges one into an existing graph while
//! preserving every construction invariant:
//!
//! * **chronological interaction order** — additions are merged into each
//!   edge's sorted sequence (with a fast append path for in-order logs);
//! * **merged parallel edges** — an interaction for an existing `(src, dst)`
//!   pair lands on that pair's edge, never on a duplicate;
//! * **stable identifiers** — existing [`NodeId`]s/[`EdgeId`]s never change;
//!   new nodes and new edges are appended in first-appearance order, exactly
//!   as [`crate::GraphBuilder`] would have numbered them in a from-scratch
//!   build;
//! * **no self-loops** — rejected at delta construction with a typed error.
//!
//! Because identifier assignment is first-appearance order in both paths,
//! applying one big delta and applying the same records as many small deltas
//! produce **identical** graphs — and both are identical to a from-scratch
//! [`crate::GraphBuilder::build`] over the whole log. (The workspace
//! proptests pin this down.) That equivalence is what lets downstream
//! incremental structures — the path tables in `tin_patterns` — patch
//! themselves per delta instead of rebuilding per snapshot.
//!
//! [`AppliedDelta`] reports what an application changed (new node range, new
//! edges, every edge that received interactions), which is exactly the
//! information an incremental index needs to compute its invalidation set.

use crate::error::GraphError;
use crate::graph::{Edge, Node, TemporalGraph};
use crate::ids::{EdgeId, NodeId, Time};
use crate::interaction::{self, Interaction};
use std::cmp::{Ordering, Reverse};
use std::collections::HashMap;

/// A validated batch of new vertices and interactions to append to a graph
/// with exactly [`GraphDelta::base_nodes`] existing vertices.
///
/// Construct with [`GraphDelta::new`] (which validates) or by draining a
/// [`crate::GraphBuilder`] via [`crate::GraphBuilder::drain_delta`] (which
/// validates incrementally as records are added). Apply with
/// [`TemporalGraph::apply`].
#[derive(Debug, Clone, PartialEq)]
pub struct GraphDelta {
    /// Number of vertices the target graph must already have; new nodes are
    /// numbered starting here.
    base_nodes: usize,
    /// Vertices to append, in identifier order (`base_nodes`,
    /// `base_nodes + 1`, ...).
    new_nodes: Vec<Node>,
    /// Interactions to merge, in arrival order. Endpoints may reference
    /// existing vertices (`< base_nodes`) or new ones.
    interactions: Vec<(NodeId, NodeId, Interaction)>,
    /// Sliding-window expiry frontier: when set, applying the delta evicts
    /// every interaction with `time < expire` (additions included) after the
    /// merge. Set with [`GraphDelta::expire_before`].
    expire: Option<Time>,
}

impl GraphDelta {
    /// Builds a delta after validating it: every endpoint must be a known
    /// vertex (existing or newly added), no interaction may be a self-loop,
    /// and quantities must be non-negative (NaN is rejected).
    pub fn new(
        base_nodes: usize,
        new_nodes: Vec<Node>,
        interactions: Vec<(NodeId, NodeId, Interaction)>,
    ) -> Result<Self, GraphError> {
        let total = base_nodes + new_nodes.len();
        for &(src, dst, i) in &interactions {
            if src.index() >= total {
                return Err(GraphError::UnknownNode(src));
            }
            if dst.index() >= total {
                return Err(GraphError::UnknownNode(dst));
            }
            if src == dst {
                return Err(GraphError::SelfLoop(src));
            }
            if i.quantity.is_nan() || i.quantity < 0.0 {
                return Err(GraphError::Invalid {
                    message: format!(
                        "interaction quantity must be non-negative, got {}",
                        i.quantity
                    ),
                });
            }
        }
        Ok(GraphDelta {
            base_nodes,
            new_nodes,
            interactions,
            expire: None,
        })
    }

    /// Crate-internal constructor for producers that validate record by
    /// record ([`crate::GraphBuilder`]); skips the redundant re-validation.
    pub(crate) fn from_validated_parts(
        base_nodes: usize,
        new_nodes: Vec<Node>,
        interactions: Vec<(NodeId, NodeId, Interaction)>,
    ) -> Self {
        debug_assert!(
            GraphDelta::new(base_nodes, new_nodes.clone(), interactions.clone()).is_ok(),
            "producer staged an invalid delta"
        );
        GraphDelta {
            base_nodes,
            new_nodes,
            interactions,
            expire: None,
        }
    }

    /// Attaches a sliding-window expiry frontier: applying the delta will
    /// evict every interaction older than `frontier` (the batch's own
    /// additions included — a straggler behind the window dies immediately),
    /// tombstoning edges that lose their whole sequence. Repeated calls keep
    /// the largest frontier; application fails if the frontier regresses
    /// below the graph's current one (frontiers are monotone).
    #[must_use]
    pub fn expire_before(mut self, frontier: Time) -> Self {
        self.expire = Some(self.expire.map_or(frontier, |f| f.max(frontier)));
        self
    }

    /// The expiry frontier this delta carries, if any.
    #[inline]
    pub fn expiry(&self) -> Option<Time> {
        self.expire
    }

    /// Number of vertices the target graph must already have.
    #[inline]
    pub fn base_nodes(&self) -> usize {
        self.base_nodes
    }

    /// Vertices this delta appends, in identifier order.
    #[inline]
    pub fn new_nodes(&self) -> &[Node] {
        &self.new_nodes
    }

    /// Interactions this delta merges, in arrival order.
    #[inline]
    pub fn interactions(&self) -> &[(NodeId, NodeId, Interaction)] {
        &self.interactions
    }

    /// Whether the delta changes nothing. A delta that only carries an
    /// expiry frontier is not empty — applying it can evict interactions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.new_nodes.is_empty() && self.interactions.is_empty() && self.expire.is_none()
    }
}

/// What [`TemporalGraph::apply`] changed: the inputs an incremental index
/// needs to invalidate precisely instead of rebuilding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedDelta {
    /// Vertex count before the application; new vertices (if any) are
    /// `nodes_before .. nodes_after` in identifier order.
    pub nodes_before: usize,
    /// Vertex count after the application.
    pub nodes_after: usize,
    /// Edges created by this application (new `(src, dst)` pairs), in
    /// identifier order.
    pub new_edges: Vec<EdgeId>,
    /// Every edge that received at least one interaction (includes all of
    /// [`AppliedDelta::new_edges`]), in first-touch order.
    pub touched_edges: Vec<EdgeId>,
    /// Number of interactions merged.
    pub interactions: usize,
    /// Number of interactions evicted by the expiry frontier (zero for
    /// append-only deltas). Counts stragglers the same delta added and the
    /// frontier immediately expired.
    pub removed_interactions: usize,
    /// Edges that lost interactions to the frontier but still carry at
    /// least one — shrunk in place, still live.
    pub shrunk_edges: Vec<EdgeId>,
    /// Edges whose entire interaction sequence expired: now tombstones,
    /// unlinked from the adjacency lists and the `(src, dst)` lookup. Their
    /// slot (and id) is retained and never reused.
    pub removed_edges: Vec<EdgeId>,
}

impl AppliedDelta {
    /// Identifiers of the vertices this application added.
    pub fn new_node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (self.nodes_before..self.nodes_after).map(NodeId::from_index)
    }

    /// Every edge whose interaction sequence changed: touched by additions,
    /// shrunk by eviction, or tombstoned. An edge can appear more than once
    /// (e.g. it gained new interactions *and* lost expired ones in the same
    /// application) — incremental indexes should treat this as a set.
    pub fn changed_edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.touched_edges
            .iter()
            .chain(&self.shrunk_edges)
            .chain(&self.removed_edges)
            .copied()
    }
}

impl TemporalGraph {
    /// Creates an empty graph. Grow it with [`TemporalGraph::apply`]; a
    /// from-scratch [`crate::GraphBuilder::build`] is exactly this plus one
    /// delta.
    pub fn new() -> Self {
        TemporalGraph::from_parts(Vec::new(), Vec::new())
    }

    /// Merges a delta into the graph, preserving every construction
    /// invariant (see the [module docs](self)).
    ///
    /// Cost is proportional to the delta, not the graph:
    /// `O(Δ log Δ)` to sort the additions plus, per touched edge, either an
    /// `O(log)` append check (when the new interactions all land at or after
    /// the edge's current end — the common case for roughly time-ordered
    /// logs) or one linear merge of that edge's sequence. Untouched edges
    /// and vertices are never visited.
    ///
    /// Fails with [`GraphError::Invalid`] when the delta was built against a
    /// different vertex count (apply deltas in the order they were drained),
    /// leaving the graph unchanged.
    pub fn apply(&mut self, delta: &GraphDelta) -> Result<AppliedDelta, GraphError> {
        if delta.base_nodes != self.nodes.len() {
            return Err(GraphError::Invalid {
                message: format!(
                    "delta was built against {} vertices but the graph has {} \
                     (deltas must be applied in drain order)",
                    delta.base_nodes,
                    self.nodes.len()
                ),
            });
        }
        if let (Some(new), Some(current)) = (delta.expire, self.frontier) {
            if new < current {
                return Err(GraphError::Invalid {
                    message: format!(
                        "expiry frontier must be monotone: delta expires before {new} \
                         but the graph window already starts at {current}"
                    ),
                });
            }
        }
        // A deserialized graph arrives without its `(src, dst)` index (and
        // eviction heap); the merge needs them, so restore both before
        // touching anything. Tombstones are legitimately absent from the
        // index, so "fewer entries than edges" is not the signal — "no
        // entries at all despite having edges" is.
        if self.edge_index.is_empty() && !self.edges.is_empty() {
            self.rebuild_index();
        }

        let nodes_before = self.nodes.len();
        self.nodes.extend(delta.new_nodes.iter().cloned());
        self.out_edges.resize_with(self.nodes.len(), Vec::new);
        self.in_edges.resize_with(self.nodes.len(), Vec::new);

        // Pass 1: route every interaction to its edge, creating edges for
        // new pairs in first-appearance order (builder-identical ids).
        let mut new_edges = Vec::new();
        let mut touched_edges = Vec::new();
        let mut additions: HashMap<EdgeId, Vec<Interaction>> = HashMap::new();
        for &(src, dst, i) in &delta.interactions {
            let id = match self.edge_index.get(&(src, dst)) {
                Some(&id) => id,
                None => {
                    let id = EdgeId::from_index(self.edges.len());
                    self.edges.push(Edge {
                        src,
                        dst,
                        interactions: Vec::new(),
                    });
                    self.out_edges[src.index()].push(id);
                    self.in_edges[dst.index()].push(id);
                    self.edge_index.insert((src, dst), id);
                    new_edges.push(id);
                    id
                }
            };
            let list = additions.entry(id).or_insert_with(|| {
                touched_edges.push(id);
                Vec::new()
            });
            list.push(i);
        }

        // Pass 2: merge each touched edge's additions into its sorted
        // sequence. Ties on (time, quantity) are identical values, so any
        // batch split of the same records yields the same sequence.
        for &id in &touched_edges {
            let mut incoming = additions.remove(&id).expect("staged above");
            interaction::sort_chronologically(&mut incoming);
            let edge = &mut self.edges[id.index()];
            let old_min = edge.interactions.first().map(|i| i.time);
            match edge.interactions.last() {
                None => edge.interactions = incoming,
                Some(last) if last.chronological_cmp(&incoming[0]) != Ordering::Greater => {
                    edge.interactions.extend_from_slice(&incoming);
                }
                Some(_) => {
                    edge.interactions = interaction::merge_sorted(&edge.interactions, &incoming);
                }
            }
            // Keep the eviction heap's invariant (every live edge has an
            // entry at or below its min) without flooding it: a new entry is
            // only needed when the minimum actually moved down.
            let new_min = edge.interactions[0].time;
            if old_min.is_none_or(|m| new_min < m) {
                self.expiry.push(Reverse((new_min, id)));
            }
        }

        // Eviction pass: drop every interaction older than the effective
        // frontier (the graph's standing one, raised by the delta's). This
        // runs after the merge so that one invariant holds unconditionally:
        // the live content is exactly the records with `time >= frontier`,
        // no matter how records were batched.
        let frontier = match (self.frontier, delta.expire) {
            (Some(current), Some(new)) => Some(current.max(new)),
            (current, new) => current.or(new),
        };
        let mut removed_interactions = 0usize;
        let mut shrunk_edges = Vec::new();
        let mut removed_edges = Vec::new();
        if let Some(f) = frontier {
            self.frontier = Some(f);
            while let Some(&Reverse((t, id))) = self.expiry.peek() {
                if t >= f {
                    break;
                }
                self.expiry.pop();
                let edge = &mut self.edges[id.index()];
                if edge.interactions.is_empty() {
                    continue; // stale entry for an already-tombstoned edge
                }
                let current_min = edge.interactions[0].time;
                if current_min >= f {
                    // Stale entry (the edge's minimum moved up); remember
                    // the real minimum for future frontiers.
                    self.expiry.push(Reverse((current_min, id)));
                    continue;
                }
                let cut = edge.interactions.partition_point(|i| i.time < f);
                removed_interactions += cut;
                edge.interactions.drain(..cut);
                if edge.interactions.is_empty() {
                    // Tombstone: unlink from adjacency and lookup; the slot
                    // (and id) is retained and never reused.
                    let (src, dst) = (edge.src, edge.dst);
                    self.out_edges[src.index()].retain(|&e| e != id);
                    self.in_edges[dst.index()].retain(|&e| e != id);
                    self.edge_index.remove(&(src, dst));
                    removed_edges.push(id);
                } else {
                    self.expiry.push(Reverse((edge.interactions[0].time, id)));
                    shrunk_edges.push(id);
                }
            }
        }

        Ok(AppliedDelta {
            nodes_before,
            nodes_after: self.nodes.len(),
            new_edges,
            touched_edges,
            interactions: delta.interactions.len(),
            removed_interactions,
            shrunk_edges,
            removed_edges,
        })
    }
}

impl Default for TemporalGraph {
    fn default() -> Self {
        TemporalGraph::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{from_records, GraphBuilder};

    fn node(name: &str) -> Node {
        Node { name: name.into() }
    }

    #[test]
    fn delta_validation_rejects_bad_batches() {
        // Unknown endpoint.
        let err = GraphDelta::new(
            1,
            vec![],
            vec![(NodeId(0), NodeId(1), Interaction::new(1, 1.0))],
        )
        .unwrap_err();
        assert!(matches!(err, GraphError::UnknownNode(NodeId(1))));
        // Self-loop.
        let err = GraphDelta::new(
            2,
            vec![],
            vec![(NodeId(1), NodeId(1), Interaction::new(1, 1.0))],
        )
        .unwrap_err();
        assert!(matches!(err, GraphError::SelfLoop(NodeId(1))));
        // Negative quantity.
        let err = GraphDelta::new(
            2,
            vec![],
            vec![(
                NodeId(0),
                NodeId(1),
                Interaction {
                    time: 1,
                    quantity: -1.0,
                },
            )],
        )
        .unwrap_err();
        assert!(matches!(err, GraphError::Invalid { .. }));
        // New nodes extend the valid range.
        assert!(GraphDelta::new(
            1,
            vec![node("b")],
            vec![(NodeId(0), NodeId(1), Interaction::new(1, 1.0))],
        )
        .is_ok());
    }

    #[test]
    fn apply_to_empty_matches_builder() {
        let records = [
            ("u1", "u2", 2, 5.0),
            ("u1", "u2", 4, 3.0),
            ("u2", "u3", 3, 4.0),
            ("u3", "u1", 6, 5.0),
        ];
        let built = from_records(records);
        let mut b = GraphBuilder::new();
        for (s, d, t, q) in records {
            let s = b.get_or_add_node(s);
            let d = b.get_or_add_node(d);
            b.add_interaction(s, d, Interaction::new(t, q)).unwrap();
        }
        let delta = b.drain_delta();
        let mut g = TemporalGraph::new();
        let applied = g.apply(&delta).unwrap();
        assert_eq!(g, built);
        g.validate().unwrap();
        assert_eq!(applied.nodes_before, 0);
        assert_eq!(applied.nodes_after, 3);
        assert_eq!(applied.new_edges.len(), 3);
        assert_eq!(applied.touched_edges.len(), 3);
        assert_eq!(applied.interactions, 4);
    }

    #[test]
    fn apply_merges_into_existing_edges_and_keeps_ids_stable() {
        let mut g = from_records([("a", "b", 5, 1.0), ("b", "c", 6, 2.0)]);
        let a = g.node_by_name("a").unwrap();
        let b = g.node_by_name("b").unwrap();
        let e_ab = g.find_edge(a, b).unwrap();
        // Append one out-of-order interaction on the existing pair and one
        // new pair through a new vertex.
        let delta = GraphDelta::new(
            3,
            vec![node("d")],
            vec![
                (a, b, Interaction::new(1, 9.0)),
                (NodeId(3), a, Interaction::new(2, 4.0)),
            ],
        )
        .unwrap();
        let applied = g.apply(&delta).unwrap();
        g.validate().unwrap();
        // Existing ids are untouched; the merged edge is re-sorted.
        assert_eq!(g.find_edge(a, b), Some(e_ab));
        assert_eq!(
            g.edge(e_ab).interactions,
            vec![Interaction::new(1, 9.0), Interaction::new(5, 1.0)]
        );
        assert_eq!(applied.new_edges.len(), 1);
        assert_eq!(applied.touched_edges.len(), 2);
        assert_eq!(g.node_count(), 4);
        let d = g.node_by_name("d").unwrap();
        assert!(g.has_edge(d, a));
        assert_eq!(applied.new_node_ids().collect::<Vec<_>>(), vec![NodeId(3)]);
    }

    #[test]
    fn apply_in_order_append_uses_the_fast_path_result() {
        // Whether or not the fast path triggers, the sequence must come out
        // sorted; exercise both the append case and the merge case.
        let mut g = from_records([("a", "b", 5, 1.0)]);
        let a = g.node_by_name("a").unwrap();
        let b = g.node_by_name("b").unwrap();
        let append = GraphDelta::new(2, vec![], vec![(a, b, Interaction::new(9, 2.0))]).unwrap();
        g.apply(&append).unwrap();
        let merge = GraphDelta::new(2, vec![], vec![(a, b, Interaction::new(7, 3.0))]).unwrap();
        g.apply(&merge).unwrap();
        let e = g.edge(g.find_edge(a, b).unwrap());
        assert_eq!(
            e.interactions,
            vec![
                Interaction::new(5, 1.0),
                Interaction::new(7, 3.0),
                Interaction::new(9, 2.0)
            ]
        );
        g.validate().unwrap();
    }

    #[test]
    fn apply_rejects_base_mismatch_and_leaves_graph_unchanged() {
        let mut g = from_records([("a", "b", 1, 1.0)]);
        let before = g.clone();
        let stale = GraphDelta::new(7, vec![], vec![]).unwrap();
        assert!(matches!(g.apply(&stale), Err(GraphError::Invalid { .. })));
        assert_eq!(g, before);
    }

    #[test]
    fn split_deltas_equal_one_delta() {
        let records = [
            ("a", "b", 3, 1.0),
            ("b", "c", 1, 2.0),
            ("a", "b", 1, 5.0),
            ("c", "a", 2, 1.5),
            ("b", "c", 1, 2.0), // exact duplicate across the split point
        ];
        let whole = from_records(records);
        for split in 0..=records.len() {
            let mut g = TemporalGraph::new();
            let mut b = GraphBuilder::new();
            for (i, (s, d, t, q)) in records.iter().enumerate() {
                if i == split {
                    g.apply(&b.drain_delta()).unwrap();
                }
                let s = b.get_or_add_node(*s);
                let d = b.get_or_add_node(*d);
                b.add_interaction(s, d, Interaction::new(*t, *q)).unwrap();
            }
            g.apply(&b.drain_delta()).unwrap();
            assert_eq!(g, whole, "split at {split}");
            g.validate().unwrap();
        }
    }

    #[test]
    fn apply_rebuilds_a_missing_index() {
        // A deserialized graph has no (src, dst) index; apply must restore
        // it rather than duplicating edges.
        let mut g = from_records([("a", "b", 1, 1.0)]);
        g.edge_index.clear();
        let a = NodeId(0);
        let b = NodeId(1);
        let delta = GraphDelta::new(2, vec![], vec![(a, b, Interaction::new(2, 1.0))]).unwrap();
        g.apply(&delta).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge(EdgeId(0)).interactions.len(), 2);
        g.validate().unwrap();
    }

    #[test]
    fn empty_delta_is_a_no_op() {
        let mut g = from_records([("a", "b", 1, 1.0)]);
        let before = g.clone();
        let delta = GraphDelta::new(2, vec![], vec![]).unwrap();
        let applied = g.apply(&delta).unwrap();
        assert_eq!(g, before);
        assert!(applied.new_edges.is_empty());
        assert!(applied.touched_edges.is_empty());
        assert!(delta.is_empty());
        assert_eq!(applied.removed_interactions, 0);
        // An eviction-only delta is *not* empty: applying it can change the
        // graph.
        assert!(!GraphDelta::new(2, vec![], vec![])
            .unwrap()
            .expire_before(5)
            .is_empty());
    }

    #[test]
    fn expiry_shrinks_and_tombstones_edges() {
        let mut g = from_records([
            ("a", "b", 1, 1.0),
            ("a", "b", 5, 2.0),
            ("b", "c", 2, 3.0),
            ("c", "a", 9, 4.0),
        ]);
        let (a, b, c) = (NodeId(0), NodeId(1), NodeId(2));
        let e_ab = g.find_edge(a, b).unwrap();
        let e_bc = g.find_edge(b, c).unwrap();
        let delta = GraphDelta::new(3, vec![], vec![]).unwrap().expire_before(4);
        let applied = g.apply(&delta).unwrap();
        g.validate().unwrap();
        // a->b lost its t=1 interaction but keeps t=5; b->c lost everything.
        assert_eq!(applied.removed_interactions, 2);
        assert_eq!(applied.shrunk_edges, vec![e_ab]);
        assert_eq!(applied.removed_edges, vec![e_bc]);
        assert_eq!(g.edge(e_ab).interactions, vec![Interaction::new(5, 2.0)]);
        assert!(g.is_tombstone(e_bc));
        assert!(!g.has_edge(b, c));
        assert!(g.find_edge(b, c).is_none());
        assert_eq!(g.frontier(), Some(4));
        assert_eq!(g.live_edge_count(), 2);
        assert_eq!(g.edge_count(), 3); // the tombstone slot is retained
        assert_eq!(g.interaction_count(), 2);
        // Tombstones keep their endpoints so change reports stay readable.
        assert_eq!(g.edge(e_bc).src, b);
        assert_eq!(g.edge(e_bc).dst, c);
    }

    #[test]
    fn frontier_must_be_monotone() {
        let mut g = from_records([("a", "b", 10, 1.0)]);
        g.apply(&GraphDelta::new(2, vec![], vec![]).unwrap().expire_before(5))
            .unwrap();
        let before = g.clone();
        let err = g
            .apply(&GraphDelta::new(2, vec![], vec![]).unwrap().expire_before(3))
            .unwrap_err();
        assert!(matches!(err, GraphError::Invalid { .. }));
        assert_eq!(g, before, "a rejected delta leaves the graph unchanged");
        // Re-applying the same frontier is fine (monotone, not strict).
        g.apply(&GraphDelta::new(2, vec![], vec![]).unwrap().expire_before(5))
            .unwrap();
    }

    #[test]
    fn stragglers_behind_the_standing_frontier_die_immediately() {
        let mut g = from_records([("a", "b", 10, 1.0)]);
        let (a, b) = (NodeId(0), NodeId(1));
        g.apply(&GraphDelta::new(2, vec![], vec![]).unwrap().expire_before(8))
            .unwrap();
        // A later batch with no frontier of its own delivers one in-window
        // and one expired record: the straggler must not resurrect history.
        let delta = GraphDelta::new(
            2,
            vec![],
            vec![
                (a, b, Interaction::new(3, 9.0)),
                (a, b, Interaction::new(12, 2.0)),
            ],
        )
        .unwrap();
        let applied = g.apply(&delta).unwrap();
        g.validate().unwrap();
        assert_eq!(applied.removed_interactions, 1);
        let e = g.find_edge(a, b).unwrap();
        assert_eq!(
            g.edge(e).interactions,
            vec![Interaction::new(10, 1.0), Interaction::new(12, 2.0)]
        );
    }

    #[test]
    fn tombstoned_pairs_revive_under_a_fresh_id() {
        let mut g = from_records([("a", "b", 1, 1.0), ("b", "c", 5, 1.0)]);
        let (a, b) = (NodeId(0), NodeId(1));
        let old = g.find_edge(a, b).unwrap();
        g.apply(&GraphDelta::new(3, vec![], vec![]).unwrap().expire_before(3))
            .unwrap();
        assert!(g.is_tombstone(old));
        // New interaction on the dead pair: fresh edge id, old slot intact.
        let delta = GraphDelta::new(3, vec![], vec![(a, b, Interaction::new(7, 2.0))]).unwrap();
        let applied = g.apply(&delta).unwrap();
        g.validate().unwrap();
        let new = g.find_edge(a, b).unwrap();
        assert_ne!(new, old, "tombstoned ids are never reused");
        assert_eq!(applied.new_edges, vec![new]);
        assert!(g.is_tombstone(old));
        assert_eq!(g.edge(new).interactions, vec![Interaction::new(7, 2.0)]);
        // The node ids were reused (names are stable), only the edge id is
        // fresh.
        assert_eq!(g.node_count(), 3);
    }

    #[test]
    fn window_that_evicts_everything() {
        let mut g = from_records([("a", "b", 1, 1.0), ("b", "c", 2, 2.0)]);
        let applied = g
            .apply(
                &GraphDelta::new(3, vec![], vec![])
                    .unwrap()
                    .expire_before(100),
            )
            .unwrap();
        g.validate().unwrap();
        assert_eq!(applied.removed_interactions, 2);
        assert_eq!(applied.removed_edges.len(), 2);
        assert_eq!(g.live_edge_count(), 0);
        assert_eq!(g.live_node_count(), 0);
        assert_eq!(g.interaction_count(), 0);
        assert_eq!(g.node_count(), 3, "vertices keep their slots and names");
        assert_eq!(g.min_time(), None);
    }

    #[test]
    fn changed_edges_unions_additions_and_removals() {
        let mut g = from_records([("a", "b", 1, 1.0), ("b", "c", 2, 1.0)]);
        let (a, b) = (NodeId(0), NodeId(1));
        // One delta that both appends to a->b and expires both old records.
        let delta = GraphDelta::new(3, vec![], vec![(a, b, Interaction::new(9, 1.0))])
            .unwrap()
            .expire_before(5);
        let applied = g.apply(&delta).unwrap();
        g.validate().unwrap();
        let e_ab = g.find_edge(a, b).unwrap();
        let mut changed: Vec<EdgeId> = applied.changed_edges().collect();
        changed.sort_unstable();
        changed.dedup();
        assert!(changed.contains(&e_ab), "touched (shrunk too)");
        assert_eq!(changed.len(), 2, "touched a->b plus tombstoned b->c");
        assert!(applied.shrunk_edges.contains(&e_ab));
        assert_eq!(applied.removed_edges.len(), 1);
    }
}
