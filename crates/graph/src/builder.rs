//! Incremental construction of [`TemporalGraph`]s.

use crate::graph::{Edge, Node, TemporalGraph};
use crate::ids::NodeId;
use crate::interaction::{sort_chronologically, Interaction};
use std::collections::HashMap;

/// Builder for [`TemporalGraph`].
///
/// The builder accepts nodes and interactions in any order. When
/// [`GraphBuilder::build`] is called:
///
/// * interactions added for the same ordered pair `(src, dst)` are merged
///   into a single edge (the paper's model has one edge per vertex pair,
///   carrying the full interaction sequence);
/// * every edge's interaction list is sorted chronologically;
/// * edges are emitted in first-insertion order of their `(src, dst)` pair,
///   which keeps identifiers stable and deterministic.
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    nodes: Vec<Node>,
    name_index: HashMap<String, NodeId>,
    /// Interactions per ordered pair, in first-insertion order of the pair.
    edge_order: Vec<(NodeId, NodeId)>,
    edge_map: HashMap<(NodeId, NodeId), Vec<Interaction>>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder pre-sized for roughly `nodes` vertices and `edges`
    /// vertex pairs.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        GraphBuilder {
            nodes: Vec::with_capacity(nodes),
            name_index: HashMap::with_capacity(nodes),
            edge_order: Vec::with_capacity(edges),
            edge_map: HashMap::with_capacity(edges),
        }
    }

    /// Adds a new node with the given external name and returns its id.
    ///
    /// Names are not required to be unique; [`GraphBuilder::get_or_add_node`]
    /// should be used when they are meant to act as keys.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        let name = name.into();
        let id = NodeId::from_index(self.nodes.len());
        self.name_index.entry(name.clone()).or_insert(id);
        self.nodes.push(Node { name });
        id
    }

    /// Returns the node with the given name, creating it if necessary.
    pub fn get_or_add_node(&mut self, name: impl Into<String>) -> NodeId {
        let name = name.into();
        if let Some(&id) = self.name_index.get(&name) {
            return id;
        }
        self.add_node(name)
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of distinct `(src, dst)` pairs added so far.
    pub fn edge_count(&self) -> usize {
        self.edge_order.len()
    }

    /// Adds a single interaction on the edge `(src, dst)`.
    ///
    /// # Panics
    /// Panics if either node id has not been created by this builder.
    pub fn add_interaction(&mut self, src: NodeId, dst: NodeId, interaction: Interaction) {
        assert!(src.index() < self.nodes.len(), "unknown source node {src}");
        assert!(
            dst.index() < self.nodes.len(),
            "unknown destination node {dst}"
        );
        let key = (src, dst);
        match self.edge_map.get_mut(&key) {
            Some(list) => list.push(interaction),
            None => {
                self.edge_order.push(key);
                self.edge_map.insert(key, vec![interaction]);
            }
        }
    }

    /// Adds a whole interaction sequence on the edge `(src, dst)`.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, interactions: Vec<Interaction>) {
        for i in interactions {
            self.add_interaction(src, dst, i);
        }
    }

    /// Convenience helper used heavily in tests and examples: adds all
    /// `(time, quantity)` pairs as interactions on `(src, dst)`.
    pub fn add_pairs(&mut self, src: NodeId, dst: NodeId, pairs: &[(i64, f64)]) {
        for &(t, q) in pairs {
            self.add_interaction(src, dst, Interaction::new(t, q));
        }
    }

    /// Finalizes the builder into an immutable [`TemporalGraph`].
    pub fn build(self) -> TemporalGraph {
        let GraphBuilder {
            nodes,
            edge_order,
            mut edge_map,
            ..
        } = self;
        let mut edges = Vec::with_capacity(edge_order.len());
        for key in edge_order {
            let mut interactions = edge_map.remove(&key).expect("edge recorded but missing");
            sort_chronologically(&mut interactions);
            edges.push(Edge {
                src: key.0,
                dst: key.1,
                interactions,
            });
        }
        TemporalGraph::from_parts(nodes, edges)
    }
}

/// Builds a graph directly from `(src_name, dst_name, time, quantity)`
/// 4-tuples. Node identifiers are assigned in order of first appearance.
///
/// This is the most convenient entry point for loading interaction logs:
///
/// ```
/// let g = tin_graph::builder::from_records([
///     ("alice", "bob", 1, 10.0),
///     ("bob", "carol", 2, 4.0),
///     ("alice", "bob", 3, 1.0),
/// ]);
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge_count(), 2);
/// assert_eq!(g.interaction_count(), 3);
/// ```
pub fn from_records<'a, I>(records: I) -> TemporalGraph
where
    I: IntoIterator<Item = (&'a str, &'a str, i64, f64)>,
{
    let mut b = GraphBuilder::new();
    for (src, dst, t, q) in records {
        let s = b.get_or_add_node(src);
        let d = b.get_or_add_node(dst);
        b.add_interaction(s, d, Interaction::new(t, q));
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_interactions_merge_into_one_edge() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a");
        let c = b.add_node("c");
        b.add_interaction(a, c, Interaction::new(5, 1.0));
        b.add_interaction(a, c, Interaction::new(2, 2.0));
        b.add_interaction(a, c, Interaction::new(9, 3.0));
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        let e = g.edge(g.find_edge(a, c).unwrap());
        assert_eq!(
            e.interactions,
            vec![
                Interaction::new(2, 2.0),
                Interaction::new(5, 1.0),
                Interaction::new(9, 3.0)
            ]
        );
    }

    #[test]
    fn get_or_add_node_deduplicates_by_name() {
        let mut b = GraphBuilder::new();
        let a1 = b.get_or_add_node("a");
        let a2 = b.get_or_add_node("a");
        let c = b.get_or_add_node("c");
        assert_eq!(a1, a2);
        assert_ne!(a1, c);
        assert_eq!(b.node_count(), 2);
    }

    #[test]
    fn add_node_allows_duplicate_names() {
        let mut b = GraphBuilder::new();
        let a1 = b.add_node("x");
        let a2 = b.add_node("x");
        assert_ne!(a1, a2);
        assert_eq!(b.node_count(), 2);
    }

    #[test]
    fn add_edge_and_pairs() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a");
        let c = b.add_node("c");
        b.add_edge(
            a,
            c,
            vec![Interaction::new(3, 1.0), Interaction::new(1, 2.0)],
        );
        b.add_pairs(c, a, &[(4, 1.0), (2, 7.0)]);
        let g = b.build();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.edge(g.find_edge(a, c).unwrap()).interactions[0].time, 1);
        assert_eq!(g.edge(g.find_edge(c, a).unwrap()).interactions[0].time, 2);
    }

    #[test]
    #[should_panic(expected = "unknown source node")]
    fn unknown_node_panics() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a");
        b.add_interaction(NodeId(5), a, Interaction::new(1, 1.0));
    }

    #[test]
    fn edge_ids_are_insertion_ordered() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a");
        let c = b.add_node("c");
        let d = b.add_node("d");
        b.add_interaction(c, d, Interaction::new(1, 1.0));
        b.add_interaction(a, c, Interaction::new(2, 1.0));
        b.add_interaction(c, d, Interaction::new(3, 1.0));
        let g = b.build();
        assert_eq!(g.edge(crate::ids::EdgeId(0)).src, c);
        assert_eq!(g.edge(crate::ids::EdgeId(1)).src, a);
    }

    #[test]
    fn from_records_builds_expected_graph() {
        let g = from_records([
            ("u1", "u2", 2, 5.0),
            ("u1", "u2", 4, 3.0),
            ("u2", "u3", 3, 4.0),
            ("u3", "u1", 6, 5.0),
        ]);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.interaction_count(), 4);
        let u1 = g.node_by_name("u1").unwrap();
        let u2 = g.node_by_name("u2").unwrap();
        assert!(g.has_edge(u1, u2));
        assert!(!g.has_edge(u2, u1));
        g.validate().unwrap();
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut b = GraphBuilder::with_capacity(10, 10);
        let a = b.add_node("a");
        let c = b.add_node("c");
        b.add_interaction(a, c, Interaction::new(1, 1.0));
        let g = b.build();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn self_loops_are_representable() {
        // Interaction networks may contain self transfers; flow algorithms
        // reject them later where a DAG is required.
        let mut b = GraphBuilder::new();
        let a = b.add_node("a");
        b.add_interaction(a, a, Interaction::new(1, 1.0));
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(a, a));
    }
}
