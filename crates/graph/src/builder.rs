//! Incremental construction of [`TemporalGraph`]s.

use crate::delta::GraphDelta;
use crate::error::GraphError;
use crate::graph::{Node, TemporalGraph};
use crate::ids::NodeId;
use crate::interaction::Interaction;
use std::collections::{HashMap, HashSet};

/// Builder for [`TemporalGraph`]s — and for [`GraphDelta`]s appended to one.
///
/// The builder accepts nodes and interactions in any order and stages them
/// as a delta. There are two ways to consume the staged work:
///
/// * [`GraphBuilder::build`] — the classic one-shot path: the staged delta
///   is applied to an empty graph. Interactions for the same ordered pair
///   `(src, dst)` are merged into a single edge (the paper's model has one
///   edge per vertex pair, carrying the full interaction sequence), every
///   edge's interaction sequence comes out chronologically sorted, and edges
///   are numbered in first-insertion order of their pair.
/// * [`GraphBuilder::drain_delta`] — the streaming path: the staged nodes
///   and interactions are emitted as a [`GraphDelta`] and the builder keeps
///   going (its name index and identifier numbering survive the drain), so
///   a long log can be folded into a live graph batch by batch with
///   [`TemporalGraph::apply`].
///
/// Both paths funnel through [`TemporalGraph::apply`], so they cannot drift
/// apart: a one-shot build **is** an apply of one big delta, and applying
/// the same records as many small deltas yields the identical graph.
///
/// Self-loop interactions (`src == dst`) are rejected at insertion with
/// [`GraphError::SelfLoop`]: the DAG pipeline treats them as cycles and the
/// text interchange format refuses to carry them, so accepting them here
/// would only defer the failure to a far-away layer.
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    /// Vertices that existed in the target graph before this builder was
    /// created ([`GraphBuilder::for_graph`]); 0 for a from-scratch build.
    base_nodes: usize,
    /// New vertices already emitted by earlier [`GraphBuilder::drain_delta`]
    /// calls (their `Node`s moved out with the deltas; the name index still
    /// knows them).
    emitted_nodes: usize,
    /// Staged new vertices, numbered `base + emitted`, `base + emitted + 1`,
    /// ...
    nodes: Vec<Node>,
    name_index: HashMap<String, NodeId>,
    /// Staged interactions in arrival order (pair merging happens in
    /// [`TemporalGraph::apply`]).
    staged: Vec<(NodeId, NodeId, Interaction)>,
    /// Distinct `(src, dst)` pairs among the staged interactions.
    staged_pairs: HashSet<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder pre-sized for roughly `nodes` vertices and `edges`
    /// vertex pairs.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        GraphBuilder {
            base_nodes: 0,
            emitted_nodes: 0,
            nodes: Vec::with_capacity(nodes),
            name_index: HashMap::with_capacity(nodes),
            staged: Vec::with_capacity(edges),
            staged_pairs: HashSet::with_capacity(edges),
        }
    }

    /// Creates a builder that stages *appends* to `graph`: existing vertices
    /// are resolvable by name through [`GraphBuilder::get_or_add_node`], new
    /// vertices are numbered after the existing ones, and every drained
    /// [`GraphDelta`] is ready for [`TemporalGraph::apply`] on that graph.
    ///
    /// Where several existing vertices share a name, the smallest identifier
    /// wins (the same rule [`GraphBuilder::add_node`] uses for duplicate
    /// names within one builder).
    pub fn for_graph(graph: &TemporalGraph) -> Self {
        let mut name_index = HashMap::with_capacity(graph.node_count());
        for (i, node) in graph.nodes().iter().enumerate() {
            name_index
                .entry(node.name.clone())
                .or_insert(NodeId::from_index(i));
        }
        GraphBuilder {
            base_nodes: graph.node_count(),
            emitted_nodes: 0,
            nodes: Vec::new(),
            name_index,
            staged: Vec::new(),
            staged_pairs: HashSet::new(),
        }
    }

    /// Total number of vertices known to the builder (pre-existing, emitted
    /// and staged); the next [`GraphBuilder::add_node`] gets this identifier.
    fn total_nodes(&self) -> usize {
        self.base_nodes + self.emitted_nodes + self.nodes.len()
    }

    /// Adds a new node with the given external name and returns its id.
    ///
    /// Names are not required to be unique; [`GraphBuilder::get_or_add_node`]
    /// should be used when they are meant to act as keys.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        let name = name.into();
        let id = NodeId::from_index(self.total_nodes());
        self.name_index.entry(name.clone()).or_insert(id);
        self.nodes.push(Node { name });
        id
    }

    /// Returns the node with the given name, creating it if necessary.
    pub fn get_or_add_node(&mut self, name: impl Into<String>) -> NodeId {
        let name = name.into();
        if let Some(&id) = self.name_index.get(&name) {
            return id;
        }
        self.add_node(name)
    }

    /// Number of nodes known to the builder (for a builder that never
    /// drained, exactly the nodes added so far).
    pub fn node_count(&self) -> usize {
        self.total_nodes()
    }

    /// Number of distinct `(src, dst)` pairs among the currently staged
    /// interactions (resets when a delta is drained).
    pub fn edge_count(&self) -> usize {
        self.staged_pairs.len()
    }

    /// Stages a single interaction on the edge `(src, dst)`.
    ///
    /// Self-loops (`src == dst`) are rejected with [`GraphError::SelfLoop`]:
    /// the resulting graph could never be serialized to the text format nor
    /// enter the DAG pipeline. NaN or negative quantities (constructible by
    /// writing [`Interaction`]'s public fields directly) are rejected with
    /// [`GraphError::Invalid`] — the same rule [`GraphDelta::new`] enforces.
    ///
    /// # Panics
    /// Panics if either node id has not been created by this builder — that
    /// is a programming error, not a data error.
    pub fn add_interaction(
        &mut self,
        src: NodeId,
        dst: NodeId,
        interaction: Interaction,
    ) -> Result<(), GraphError> {
        assert!(
            src.index() < self.total_nodes(),
            "unknown source node {src}"
        );
        assert!(
            dst.index() < self.total_nodes(),
            "unknown destination node {dst}"
        );
        if src == dst {
            return Err(GraphError::SelfLoop(src));
        }
        if interaction.quantity.is_nan() || interaction.quantity < 0.0 {
            return Err(GraphError::Invalid {
                message: format!(
                    "interaction quantity must be non-negative, got {}",
                    interaction.quantity
                ),
            });
        }
        self.staged_pairs.insert((src, dst));
        self.staged.push((src, dst, interaction));
        Ok(())
    }

    /// Stages a whole interaction sequence on the edge `(src, dst)`.
    pub fn add_edge(
        &mut self,
        src: NodeId,
        dst: NodeId,
        interactions: Vec<Interaction>,
    ) -> Result<(), GraphError> {
        for i in interactions {
            self.add_interaction(src, dst, i)?;
        }
        Ok(())
    }

    /// Convenience helper used heavily in tests and examples: stages all
    /// `(time, quantity)` pairs as interactions on `(src, dst)`.
    pub fn add_pairs(
        &mut self,
        src: NodeId,
        dst: NodeId,
        pairs: &[(i64, f64)],
    ) -> Result<(), GraphError> {
        for &(t, q) in pairs {
            self.add_interaction(src, dst, Interaction::new(t, q))?;
        }
        Ok(())
    }

    /// Emits everything staged since the last drain as a [`GraphDelta`] and
    /// keeps the builder alive: names added so far still resolve, identifier
    /// numbering continues, and the next drain picks up where this one left
    /// off. The memory retained between drains is the name index alone — a
    /// follow-mode ingester holds state proportional to the *distinct
    /// vertices seen*, not to the log.
    ///
    /// Deltas must be applied to the target graph in drain order
    /// ([`TemporalGraph::apply`] checks the vertex count to enforce this).
    pub fn drain_delta(&mut self) -> GraphDelta {
        let new_nodes = std::mem::take(&mut self.nodes);
        let interactions = std::mem::take(&mut self.staged);
        self.staged_pairs.clear();
        let base = self.base_nodes + self.emitted_nodes;
        self.emitted_nodes += new_nodes.len();
        GraphDelta::from_validated_parts(base, new_nodes, interactions)
    }

    /// Finalizes a from-scratch builder into a [`TemporalGraph`]: drains the
    /// staged delta and applies it to an empty graph (the single code path
    /// shared with streaming appends).
    ///
    /// # Panics
    /// Panics if the builder was created with [`GraphBuilder::for_graph`] or
    /// has already drained deltas — such a builder describes an *append*,
    /// not a whole graph; apply its deltas with [`TemporalGraph::apply`]
    /// instead.
    pub fn build(mut self) -> TemporalGraph {
        assert!(
            self.base_nodes == 0 && self.emitted_nodes == 0,
            "build() on an append builder would silently drop the already-drained \
             prefix; apply its deltas with TemporalGraph::apply instead"
        );
        let delta = self.drain_delta();
        let mut graph = TemporalGraph::new();
        graph
            .apply(&delta)
            .expect("a freshly drained delta applies to its base");
        graph
    }
}

/// Builds a graph directly from `(src_name, dst_name, time, quantity)`
/// 4-tuples. Node identifiers are assigned in order of first appearance.
///
/// This is the most convenient entry point for loading interaction logs:
///
/// ```
/// let g = tin_graph::builder::from_records([
///     ("alice", "bob", 1, 10.0),
///     ("bob", "carol", 2, 4.0),
///     ("alice", "bob", 3, 1.0),
/// ]);
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge_count(), 2);
/// assert_eq!(g.interaction_count(), 3);
/// ```
///
/// # Panics
/// Panics on self-loop records (`src_name == dst_name`); use
/// [`GraphBuilder::add_interaction`] directly to handle the typed error.
pub fn from_records<'a, I>(records: I) -> TemporalGraph
where
    I: IntoIterator<Item = (&'a str, &'a str, i64, f64)>,
{
    let mut b = GraphBuilder::new();
    for (src, dst, t, q) in records {
        let s = b.get_or_add_node(src);
        let d = b.get_or_add_node(dst);
        b.add_interaction(s, d, Interaction::new(t, q))
            .expect("from_records does not accept self-loops");
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_interactions_merge_into_one_edge() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a");
        let c = b.add_node("c");
        b.add_interaction(a, c, Interaction::new(5, 1.0)).unwrap();
        b.add_interaction(a, c, Interaction::new(2, 2.0)).unwrap();
        b.add_interaction(a, c, Interaction::new(9, 3.0)).unwrap();
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        let e = g.edge(g.find_edge(a, c).unwrap());
        assert_eq!(
            e.interactions,
            vec![
                Interaction::new(2, 2.0),
                Interaction::new(5, 1.0),
                Interaction::new(9, 3.0)
            ]
        );
    }

    #[test]
    fn get_or_add_node_deduplicates_by_name() {
        let mut b = GraphBuilder::new();
        let a1 = b.get_or_add_node("a");
        let a2 = b.get_or_add_node("a");
        let c = b.get_or_add_node("c");
        assert_eq!(a1, a2);
        assert_ne!(a1, c);
        assert_eq!(b.node_count(), 2);
    }

    #[test]
    fn add_node_allows_duplicate_names() {
        let mut b = GraphBuilder::new();
        let a1 = b.add_node("x");
        let a2 = b.add_node("x");
        assert_ne!(a1, a2);
        assert_eq!(b.node_count(), 2);
    }

    #[test]
    fn add_edge_and_pairs() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a");
        let c = b.add_node("c");
        b.add_edge(
            a,
            c,
            vec![Interaction::new(3, 1.0), Interaction::new(1, 2.0)],
        )
        .unwrap();
        b.add_pairs(c, a, &[(4, 1.0), (2, 7.0)]).unwrap();
        let g = b.build();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.edge(g.find_edge(a, c).unwrap()).interactions[0].time, 1);
        assert_eq!(g.edge(g.find_edge(c, a).unwrap()).interactions[0].time, 2);
    }

    #[test]
    #[should_panic(expected = "unknown source node")]
    fn unknown_node_panics() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a");
        let _ = b.add_interaction(NodeId(5), a, Interaction::new(1, 1.0));
    }

    #[test]
    fn edge_ids_are_insertion_ordered() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a");
        let c = b.add_node("c");
        let d = b.add_node("d");
        b.add_interaction(c, d, Interaction::new(1, 1.0)).unwrap();
        b.add_interaction(a, c, Interaction::new(2, 1.0)).unwrap();
        b.add_interaction(c, d, Interaction::new(3, 1.0)).unwrap();
        let g = b.build();
        assert_eq!(g.edge(crate::ids::EdgeId(0)).src, c);
        assert_eq!(g.edge(crate::ids::EdgeId(1)).src, a);
    }

    #[test]
    fn from_records_builds_expected_graph() {
        let g = from_records([
            ("u1", "u2", 2, 5.0),
            ("u1", "u2", 4, 3.0),
            ("u2", "u3", 3, 4.0),
            ("u3", "u1", 6, 5.0),
        ]);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.interaction_count(), 4);
        let u1 = g.node_by_name("u1").unwrap();
        let u2 = g.node_by_name("u2").unwrap();
        assert!(g.has_edge(u1, u2));
        assert!(!g.has_edge(u2, u1));
        g.validate().unwrap();
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut b = GraphBuilder::with_capacity(10, 10);
        let a = b.add_node("a");
        let c = b.add_node("c");
        b.add_interaction(a, c, Interaction::new(1, 1.0)).unwrap();
        let g = b.build();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn bad_quantities_are_rejected_with_a_typed_error() {
        // `Interaction`'s fields are public, so invalid quantities can reach
        // the builder without going through `Interaction::new`'s debug
        // assertion; the builder must reject them like `GraphDelta::new`.
        let mut b = GraphBuilder::new();
        let a = b.add_node("a");
        let c = b.add_node("c");
        for quantity in [-1.0, f64::NAN] {
            let err = b
                .add_interaction(a, c, Interaction { time: 1, quantity })
                .unwrap_err();
            assert!(matches!(err, GraphError::Invalid { .. }), "q={quantity}");
        }
        let g = b.build();
        assert_eq!(g.interaction_count(), 0);
    }

    #[test]
    fn self_loops_are_rejected_with_a_typed_error() {
        // PR 4 made the io layer refuse to serialize self-loops; the builder
        // now refuses to construct them in the first place.
        let mut b = GraphBuilder::new();
        let a = b.add_node("a");
        let c = b.add_node("c");
        let err = b
            .add_interaction(a, a, Interaction::new(1, 1.0))
            .unwrap_err();
        assert_eq!(err, GraphError::SelfLoop(a));
        assert!(matches!(
            b.add_edge(a, a, vec![Interaction::new(1, 1.0)]),
            Err(GraphError::SelfLoop(_))
        ));
        assert!(matches!(
            b.add_pairs(a, a, &[(1, 1.0)]),
            Err(GraphError::SelfLoop(_))
        ));
        // The rejected interactions leave no trace.
        b.add_interaction(a, c, Interaction::new(2, 1.0)).unwrap();
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert!(!g.has_edge(a, a));
    }

    #[test]
    fn drain_preserves_names_ids_and_counters() {
        let mut b = GraphBuilder::new();
        let a = b.get_or_add_node("a");
        let c = b.get_or_add_node("c");
        b.add_interaction(a, c, Interaction::new(1, 1.0)).unwrap();
        assert_eq!(b.edge_count(), 1);
        let first = b.drain_delta();
        assert_eq!(first.base_nodes(), 0);
        assert_eq!(first.new_nodes().len(), 2);
        assert_eq!(b.edge_count(), 0, "pair accounting resets per delta");
        // Names drained earlier still resolve; new vertices continue the
        // numbering.
        assert_eq!(b.get_or_add_node("a"), a);
        let d = b.get_or_add_node("d");
        assert_eq!(d, NodeId(2));
        b.add_interaction(c, d, Interaction::new(2, 1.0)).unwrap();
        let second = b.drain_delta();
        assert_eq!(second.base_nodes(), 2);
        assert_eq!(second.new_nodes().len(), 1);
        let mut g = TemporalGraph::new();
        g.apply(&first).unwrap();
        g.apply(&second).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        g.validate().unwrap();
    }

    #[test]
    fn for_graph_appends_against_existing_names() {
        let g0 = from_records([("a", "b", 1, 1.0)]);
        let mut b = GraphBuilder::for_graph(&g0);
        let a = b.get_or_add_node("a");
        assert_eq!(a, g0.node_by_name("a").unwrap());
        let c = b.get_or_add_node("c");
        assert_eq!(c.index(), 2);
        b.add_interaction(a, c, Interaction::new(5, 2.0)).unwrap();
        let mut g = g0.clone();
        g.apply(&b.drain_delta()).unwrap();
        assert_eq!(g.node_count(), 3);
        assert!(g.has_edge(a, c));
        g.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "append builder")]
    fn build_on_an_append_builder_panics() {
        let g0 = from_records([("a", "b", 1, 1.0)]);
        let b = GraphBuilder::for_graph(&g0);
        let _ = b.build();
    }
}
