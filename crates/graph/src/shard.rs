//! [`ShardedGraph`]: K vertex-partitioned [`TemporalGraph`] shards behind a
//! routing layer, with results provably identical to the serial path.
//!
//! ## Partitioning
//!
//! Every edge `(u, v)` is owned by the shard of its **minimum endpoint**:
//! `owner(u, v) = min(u, v) % K`. The partition function is a pure function
//! of global vertex ids, so routing is deterministic and needs no lookup
//! tables. A vertex incident to edges owned by several shards gets a local
//! *replica* node in each of them (created lazily, on the first interaction
//! routed there); the replicas share the global vertex's name and are tied
//! together by the router's global↔local id maps.
//!
//! ## Id stability
//!
//! Global [`NodeId`]s are assigned exactly as the serial path assigns them
//! (new vertices append in delta order). Global [`EdgeId`]s are assigned *at
//! routing time*, in first-appearance order of new `(src, dst)` pairs over
//! the delta's interaction sequence — the same order in which
//! [`TemporalGraph::apply`] discovers them — so a [`ShardedGraph`] and a
//! serial [`TemporalGraph`] fed the same deltas agree on every identifier.
//! Each global edge id maps to a `(shard, local edge)` slot; like the serial
//! path, tombstoned ids are never reused and a revived pair gets a fresh
//! global id.
//!
//! ## Parallel application
//!
//! [`ShardedGraph::apply`] splits one [`GraphDelta`] into at most K
//! shard-local deltas (routing on the calling thread: it is a cheap linear
//! scan), applies them on the [`tin_parallel`] pool — each shard is an
//! independent `TemporalGraph`, so shard applications share nothing — and
//! translates the per-shard [`AppliedDelta`]s back into one global report.
//! An expiry frontier is broadcast to every shard, so sliding-window
//! eviction (including tombstoning) happens shard-locally; shard frontiers
//! therefore all equal the global frontier and stragglers behind the
//! standing window die in-shard exactly as they do serially.
//!
//! In the global [`AppliedDelta`], `new_edges` (first-appearance order) and
//! `touched_edges` (first-touch order) are byte-identical to the serial
//! report; `shrunk_edges` / `removed_edges` contain the same id *sets* but
//! sorted ascending, because per-shard eviction order cannot reproduce the
//! serial heap's pop order (consumers treat them as sets — see
//! [`AppliedDelta::changed_edges`]).
//!
//! The equivalence is pinned down by [`ShardedGraph::first_divergence`] and
//! the `shard_equivalence` proptests.

use crate::delta::{AppliedDelta, GraphDelta};
use crate::error::GraphError;
use crate::graph::{Node, TemporalGraph};
use crate::ids::{EdgeId, NodeId, Time};
use crate::interaction::Interaction;
use std::collections::{HashMap, HashSet};
use tin_parallel::parallel_map_mut;

/// Where a global edge lives: its owning shard, its local id there, and its
/// (global) endpoints. Endpoints are kept here so tombstoned edges stay
/// interpretable without touching the shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct EdgeLoc {
    shard: u32,
    local: EdgeId,
    src: NodeId,
    dst: NodeId,
}

/// One shard: a local-id [`TemporalGraph`] plus the maps tying its local
/// ids to the router's global ones.
#[derive(Debug, Clone)]
struct Shard {
    graph: TemporalGraph,
    /// Global node id → local replica id in this shard.
    to_local: HashMap<NodeId, NodeId>,
    /// Local node id → global node id (inverse of `to_local`).
    node_globals: Vec<NodeId>,
    /// Local edge id → global edge id, in local creation order.
    edge_globals: Vec<EdgeId>,
}

impl Shard {
    fn new() -> Self {
        Shard {
            graph: TemporalGraph::new(),
            to_local: HashMap::new(),
            node_globals: Vec::new(),
            edge_globals: Vec::new(),
        }
    }
}

/// Per-shard staging accumulated while routing one delta.
struct StagedShard {
    base_local_nodes: usize,
    new_nodes: Vec<Node>,
    interactions: Vec<(NodeId, NodeId, Interaction)>,
    /// Global ids assigned (in local creation order) to the edges this
    /// delta will create in the shard.
    new_edge_globals: Vec<EdgeId>,
}

/// A temporal graph partitioned into K vertex-owned [`TemporalGraph`]
/// shards that apply deltas in parallel. See the [module docs](self) for
/// the partition function, id stability and the equivalence argument.
#[derive(Debug, Clone)]
pub struct ShardedGraph {
    shards: Vec<Shard>,
    /// Global node table (names), covering every vertex incl. isolated ones.
    nodes: Vec<Node>,
    /// Global edge table: id → owning shard + local slot + endpoints.
    edges: Vec<EdgeLoc>,
    /// Live `(src, dst) → edge` lookup; tombstoned pairs are absent, like
    /// the serial `edge_index`.
    pair_index: HashMap<(NodeId, NodeId), EdgeId>,
    /// Expiry high-water mark, mirrored into every shard.
    frontier: Option<Time>,
}

impl ShardedGraph {
    /// Creates an empty graph of `shard_count` shards (clamped to ≥ 1).
    pub fn new(shard_count: usize) -> Self {
        ShardedGraph {
            shards: (0..shard_count.max(1)).map(|_| Shard::new()).collect(),
            nodes: Vec::new(),
            edges: Vec::new(),
            pair_index: HashMap::new(),
            frontier: None,
        }
    }

    /// Number of shards.
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning edges of the vertex pair `(u, v)`.
    #[inline]
    fn owner(&self, u: NodeId, v: NodeId) -> usize {
        u.min(v).index() % self.shards.len()
    }

    /// Number of vertices (global).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of global edge slots, tombstones included (ids are never
    /// reused, exactly like [`TemporalGraph::edge_count`]).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of live (non-tombstoned) edges.
    #[inline]
    pub fn live_edge_count(&self) -> usize {
        self.pair_index.len()
    }

    /// Total number of interactions over all shards.
    pub fn interaction_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.graph.interaction_count())
            .sum()
    }

    /// The node table entry for a global id.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The expiry high-water mark (see [`TemporalGraph::frontier`]).
    #[inline]
    pub fn frontier(&self) -> Option<Time> {
        self.frontier
    }

    /// Looks up the live edge from `src` to `dst`, if present.
    #[inline]
    pub fn find_edge(&self, src: NodeId, dst: NodeId) -> Option<EdgeId> {
        self.pair_index.get(&(src, dst)).copied()
    }

    /// Whether a live edge from `src` to `dst` exists.
    #[inline]
    pub fn has_edge(&self, src: NodeId, dst: NodeId) -> bool {
        self.pair_index.contains_key(&(src, dst))
    }

    /// The (global) endpoints of edge `id`; valid for tombstones too.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[inline]
    pub fn endpoints(&self, id: EdgeId) -> (NodeId, NodeId) {
        let loc = self.edges[id.index()];
        (loc.src, loc.dst)
    }

    /// Whether edge `id` is a tombstone.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn is_tombstone(&self, id: EdgeId) -> bool {
        let loc = self.edges[id.index()];
        self.shards[loc.shard as usize]
            .graph
            .is_tombstone(loc.local)
    }

    /// The chronologically sorted interaction sequence of edge `id` (empty
    /// for tombstones).
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn edge_interactions(&self, id: EdgeId) -> &[Interaction] {
        let loc = self.edges[id.index()];
        &self.shards[loc.shard as usize]
            .graph
            .edge(loc.local)
            .interactions
    }

    /// The interaction sequence of the live edge `src → dst`, if present.
    pub fn pair_interactions(&self, src: NodeId, dst: NodeId) -> Option<&[Interaction]> {
        self.find_edge(src, dst)
            .map(|id| self.edge_interactions(id))
    }

    /// The live out-edges of `u` across all shards, as
    /// `(global edge id, destination, interactions)`, sorted by edge id —
    /// the order the serial adjacency list would yield for the same graph.
    pub fn out_pairs(&self, u: NodeId) -> Vec<(EdgeId, NodeId, &[Interaction])> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let Some(&lu) = shard.to_local.get(&u) else {
                continue;
            };
            for &le in shard.graph.out_edges(lu) {
                let edge = shard.graph.edge(le);
                out.push((
                    shard.edge_globals[le.index()],
                    shard.node_globals[edge.dst.index()],
                    edge.interactions.as_slice(),
                ));
            }
        }
        out.sort_unstable_by_key(|&(id, _, _)| id);
        out
    }

    /// The sources of `u`'s live in-edges across all shards, sorted by the
    /// in-edge's global id — the order serial
    /// [`TemporalGraph::in_neighbors`] would yield.
    pub fn in_sources(&self, u: NodeId) -> Vec<NodeId> {
        let mut srcs: Vec<(EdgeId, NodeId)> = Vec::new();
        for shard in &self.shards {
            let Some(&lu) = shard.to_local.get(&u) else {
                continue;
            };
            for &le in shard.graph.in_edges(lu) {
                let edge = shard.graph.edge(le);
                srcs.push((
                    shard.edge_globals[le.index()],
                    shard.node_globals[edge.src.index()],
                ));
            }
        }
        srcs.sort_unstable_by_key(|&(id, _)| id);
        srcs.into_iter().map(|(_, src)| src).collect()
    }

    /// Merges a delta into the sharded graph: routes it into at most K
    /// shard-local deltas, applies them in parallel, and reports one global
    /// [`AppliedDelta`] with the same ids the serial path would report (see
    /// the [module docs](self) for which orders are preserved).
    ///
    /// Fails exactly where [`TemporalGraph::apply`] fails — base vertex
    /// count mismatch or a regressing expiry frontier — leaving the graph
    /// unchanged.
    pub fn apply(&mut self, delta: &GraphDelta) -> Result<AppliedDelta, GraphError> {
        if delta.base_nodes() != self.nodes.len() {
            return Err(GraphError::Invalid {
                message: format!(
                    "delta was built against {} vertices but the graph has {} \
                     (deltas must be applied in drain order)",
                    delta.base_nodes(),
                    self.nodes.len()
                ),
            });
        }
        if let (Some(new), Some(current)) = (delta.expiry(), self.frontier) {
            if new < current {
                return Err(GraphError::Invalid {
                    message: format!(
                        "expiry frontier must be monotone: delta expires before {new} \
                         but the graph window already starts at {current}"
                    ),
                });
            }
        }

        let nodes_before = self.nodes.len();
        self.nodes.extend(delta.new_nodes().iter().cloned());

        // Route: walk the delta's interactions in order, assigning global
        // edge ids to new pairs in first-appearance order (serial-identical)
        // and staging each interaction on its owning shard under local ids.
        let mut staged: Vec<StagedShard> = self
            .shards
            .iter()
            .map(|s| StagedShard {
                base_local_nodes: s.graph.node_count(),
                new_nodes: Vec::new(),
                interactions: Vec::new(),
                new_edge_globals: Vec::new(),
            })
            .collect();
        let mut new_edges = Vec::new();
        let mut touched_edges = Vec::new();
        let mut touched_seen: HashSet<EdgeId> = HashSet::new();
        for &(u, v, i) in delta.interactions() {
            let gid = match self.pair_index.get(&(u, v)) {
                Some(&gid) => gid,
                None => {
                    let s = self.owner(u, v);
                    let local = EdgeId::from_index(
                        self.shards[s].graph.edge_count() + staged[s].new_edge_globals.len(),
                    );
                    let gid = EdgeId::from_index(self.edges.len());
                    self.edges.push(EdgeLoc {
                        shard: s as u32,
                        local,
                        src: u,
                        dst: v,
                    });
                    self.pair_index.insert((u, v), gid);
                    staged[s].new_edge_globals.push(gid);
                    new_edges.push(gid);
                    gid
                }
            };
            let s = self.edges[gid.index()].shard as usize;
            let lu = local_node(&mut self.shards[s], &mut staged[s], &self.nodes, u);
            let lv = local_node(&mut self.shards[s], &mut staged[s], &self.nodes, v);
            staged[s].interactions.push((lu, lv, i));
            if touched_seen.insert(gid) {
                touched_edges.push(gid);
            }
        }

        // Build shard deltas; an expiry frontier is broadcast to every
        // shard so windowed eviction happens shard-locally.
        let expire = delta.expiry();
        let mut new_edge_globals: Vec<Vec<EdgeId>> = Vec::with_capacity(staged.len());
        let shard_deltas: Vec<Option<GraphDelta>> = staged
            .into_iter()
            .map(|st| {
                new_edge_globals.push(st.new_edge_globals);
                if st.new_nodes.is_empty() && st.interactions.is_empty() && expire.is_none() {
                    return None;
                }
                let mut d = GraphDelta::from_validated_parts(
                    st.base_local_nodes,
                    st.new_nodes,
                    st.interactions,
                );
                if let Some(f) = expire {
                    d = d.expire_before(f);
                }
                Some(d)
            })
            .collect();

        // Apply shard deltas in parallel: each shard is an independent
        // TemporalGraph, so applications share nothing.
        let applieds: Vec<Option<AppliedDelta>> = parallel_map_mut(&mut self.shards, |i, shard| {
            shard_deltas[i].as_ref().map(|d| {
                shard
                    .graph
                    .apply(d)
                    .expect("a routed shard delta is valid by construction")
            })
        });

        // Translate per-shard reports back to global ids.
        let mut removed_interactions = 0usize;
        let mut shrunk_edges = Vec::new();
        let mut removed_edges = Vec::new();
        for (s, applied) in applieds.iter().enumerate() {
            let Some(a) = applied else { continue };
            let shard = &mut self.shards[s];
            debug_assert_eq!(
                a.new_edges.len(),
                new_edge_globals[s].len(),
                "shard-local edge creation must match routed assignment"
            );
            shard.edge_globals.append(&mut new_edge_globals[s]);
            removed_interactions += a.removed_interactions;
            for &le in &a.shrunk_edges {
                shrunk_edges.push(shard.edge_globals[le.index()]);
            }
            for &le in &a.removed_edges {
                let gid = shard.edge_globals[le.index()];
                removed_edges.push(gid);
                let loc = self.edges[gid.index()];
                if self.pair_index.get(&(loc.src, loc.dst)) == Some(&gid) {
                    self.pair_index.remove(&(loc.src, loc.dst));
                }
            }
        }
        // Per-shard eviction cannot reproduce the serial heap's pop order;
        // report the same sets in ascending id order instead.
        shrunk_edges.sort_unstable();
        removed_edges.sort_unstable();
        if let Some(f) = expire {
            self.frontier = Some(self.frontier.map_or(f, |c| c.max(f)));
        }

        Ok(AppliedDelta {
            nodes_before,
            nodes_after: self.nodes.len(),
            new_edges,
            touched_edges,
            interactions: delta.interactions().len(),
            removed_interactions,
            shrunk_edges,
            removed_edges,
        })
    }

    /// Compares this sharded graph against a serial [`TemporalGraph`] fed
    /// the same deltas and describes the first divergence, or `None` if the
    /// two are identical (ids, names, endpoints, interaction sequences,
    /// tombstones, frontier). The canonical equivalence check used by the
    /// proptests and the `experiments parallel` harness.
    pub fn first_divergence(&self, serial: &TemporalGraph) -> Option<String> {
        if self.nodes.len() != serial.node_count() {
            return Some(format!(
                "node count: sharded {} vs serial {}",
                self.nodes.len(),
                serial.node_count()
            ));
        }
        for (i, node) in self.nodes.iter().enumerate() {
            let id = NodeId::from_index(i);
            if node != serial.node(id) {
                return Some(format!(
                    "node {id}: sharded {:?} vs serial {:?}",
                    node.name,
                    serial.node(id).name
                ));
            }
        }
        if self.frontier != serial.frontier() {
            return Some(format!(
                "frontier: sharded {:?} vs serial {:?}",
                self.frontier,
                serial.frontier()
            ));
        }
        if self.edges.len() != serial.edge_count() {
            return Some(format!(
                "edge count: sharded {} vs serial {}",
                self.edges.len(),
                serial.edge_count()
            ));
        }
        for (i, loc) in self.edges.iter().enumerate() {
            let id = EdgeId::from_index(i);
            let serial_edge = serial.edge(id);
            if (loc.src, loc.dst) != (serial_edge.src, serial_edge.dst) {
                return Some(format!(
                    "edge {id} endpoints: sharded ({}, {}) vs serial ({}, {})",
                    loc.src, loc.dst, serial_edge.src, serial_edge.dst
                ));
            }
            if self.edge_interactions(id) != serial_edge.interactions.as_slice() {
                return Some(format!(
                    "edge {id} interactions: sharded {:?} vs serial {:?}",
                    self.edge_interactions(id),
                    serial_edge.interactions
                ));
            }
            let in_pair_index = self.pair_index.get(&(loc.src, loc.dst)) == Some(&id);
            let in_serial_index = serial.find_edge(loc.src, loc.dst) == Some(id);
            if in_pair_index != in_serial_index {
                return Some(format!(
                    "edge {id} liveness: sharded indexed {in_pair_index} \
                     vs serial indexed {in_serial_index}"
                ));
            }
        }
        None
    }
}

/// The local replica id of global vertex `g` in `shard`, creating the
/// replica (staged) on first use.
fn local_node(shard: &mut Shard, staged: &mut StagedShard, nodes: &[Node], g: NodeId) -> NodeId {
    if let Some(&l) = shard.to_local.get(&g) {
        return l;
    }
    let l = NodeId::from_index(staged.base_local_nodes + staged.new_nodes.len());
    shard.to_local.insert(g, l);
    shard.node_globals.push(g);
    staged.new_nodes.push(nodes[g.index()].clone());
    l
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    /// Stages `records` on a persistent builder and drains them as the next
    /// delta of the sequence (the builder keeps name→id numbering across
    /// drains, exactly like a streaming ingester).
    fn drain(b: &mut GraphBuilder, records: &[(&str, &str, i64, f64)]) -> GraphDelta {
        for &(s, d, t, q) in records {
            let s = b.get_or_add_node(s);
            let d = b.get_or_add_node(d);
            b.add_interaction(s, d, Interaction::new(t, q)).unwrap();
        }
        b.drain_delta()
    }

    fn check_equivalence(deltas: &[GraphDelta], k: usize) {
        let mut serial = TemporalGraph::new();
        let mut sharded = ShardedGraph::new(k);
        for delta in deltas {
            let a = serial.apply(delta).unwrap();
            let b = sharded.apply(delta).unwrap();
            assert_eq!(a.nodes_before, b.nodes_before);
            assert_eq!(a.nodes_after, b.nodes_after);
            assert_eq!(a.new_edges, b.new_edges, "new edge ids must match serially");
            assert_eq!(a.touched_edges, b.touched_edges);
            assert_eq!(a.interactions, b.interactions);
            assert_eq!(a.removed_interactions, b.removed_interactions);
            let mut shrunk = a.shrunk_edges.clone();
            shrunk.sort_unstable();
            assert_eq!(shrunk, b.shrunk_edges);
            let mut removed = a.removed_edges.clone();
            removed.sort_unstable();
            assert_eq!(removed, b.removed_edges);
            assert_eq!(sharded.first_divergence(&serial), None);
        }
        assert_eq!(sharded.interaction_count(), serial.interaction_count());
        assert_eq!(sharded.live_edge_count(), serial.live_edge_count());
    }

    #[test]
    fn matches_serial_on_append_only_sequences() {
        let mut b = GraphBuilder::new();
        let d1 = drain(
            &mut b,
            &[("a", "b", 1, 1.0), ("b", "c", 2, 2.0), ("a", "c", 3, 3.0)],
        );
        let d2 = drain(
            &mut b,
            &[("c", "d", 4, 1.0), ("a", "b", 5, 2.0), ("d", "a", 6, 1.5)],
        );
        for k in [1, 2, 3, 7] {
            check_equivalence(&[d1.clone(), d2.clone()], k);
        }
    }

    #[test]
    fn matches_serial_under_expiry_and_revival() {
        let mut b = GraphBuilder::new();
        let d1 = drain(
            &mut b,
            &[("a", "b", 1, 1.0), ("b", "c", 5, 1.0), ("c", "d", 9, 1.0)],
        );
        // Evicts a->b entirely (tombstone) and nothing else.
        let d2 = drain(&mut b, &[]).expire_before(4);
        // Revives the dead pair under a fresh id, with a straggler that dies
        // on arrival.
        let d3 = drain(
            &mut b,
            &[("a", "b", 7, 2.0), ("a", "b", 2, 9.0), ("d", "e", 8, 1.0)],
        )
        .expire_before(6);
        for k in [1, 2, 3, 7] {
            check_equivalence(&[d1.clone(), d2.clone(), d3.clone()], k);
        }
    }

    #[test]
    fn rejects_base_mismatch_and_frontier_regression() {
        let mut sharded = ShardedGraph::new(3);
        let mut b = GraphBuilder::new();
        let d1 = drain(&mut b, &[("a", "b", 10, 1.0)]).expire_before(5);
        sharded.apply(&d1).unwrap();
        // Wrong base count.
        let stale = GraphDelta::new(9, vec![], vec![]).unwrap();
        assert!(matches!(
            sharded.apply(&stale),
            Err(GraphError::Invalid { .. })
        ));
        // Regressing frontier.
        let back = GraphDelta::new(2, vec![], vec![]).unwrap().expire_before(3);
        assert!(matches!(
            sharded.apply(&back),
            Err(GraphError::Invalid { .. })
        ));
        // State unchanged: same frontier, same content.
        assert_eq!(sharded.frontier(), Some(5));
        assert_eq!(sharded.interaction_count(), 1);
    }

    #[test]
    fn adjacency_views_are_sorted_by_global_edge_id() {
        let mut b = GraphBuilder::new();
        let d1 = drain(
            &mut b,
            &[
                ("hub", "a", 1, 1.0),
                ("hub", "b", 2, 1.0),
                ("hub", "c", 3, 1.0),
                ("x", "hub", 4, 1.0),
                ("c", "hub", 5, 1.0),
            ],
        );
        let mut serial = TemporalGraph::new();
        serial.apply(&d1).unwrap();
        for k in [1, 2, 3, 7] {
            let mut sharded = ShardedGraph::new(k);
            sharded.apply(&d1).unwrap();
            let hub = serial.node_by_name("hub").unwrap();
            let serial_out: Vec<(EdgeId, NodeId)> = serial
                .out_edges(hub)
                .iter()
                .map(|&e| (e, serial.edge(e).dst))
                .collect();
            let sharded_out: Vec<(EdgeId, NodeId)> = sharded
                .out_pairs(hub)
                .into_iter()
                .map(|(e, dst, _)| (e, dst))
                .collect();
            assert_eq!(serial_out, sharded_out, "k={k}");
            let serial_in: Vec<NodeId> = serial.in_neighbors(hub).collect();
            assert_eq!(serial_in, sharded.in_sources(hub), "k={k}");
            for (e, _, ints) in sharded.out_pairs(hub) {
                assert_eq!(ints, serial.edge(e).interactions.as_slice());
            }
        }
    }
}
