//! Persistence of temporal interaction networks.
//!
//! Two formats are supported:
//!
//! * **JSON** via serde — lossless, used for fixtures and tooling;
//! * a compact **text format**, one interaction per line
//!   (`<src-name> <dst-name> <time> <quantity>`), which mirrors the
//!   `(sender, recipient, timestamp, amount)` records the paper builds its
//!   datasets from and is convenient for importing real logs.
//!
//! Both formats use the same lossless representation for the infinite
//! quantities of synthetic source/sink interactions: the tagged token
//! [`INFINITE_QUANTITY_TOKEN`] (`"inf"`). JSON has no infinity literal
//! (upstream `serde_json` writes `null`, which does not round-trip), so the
//! quantity field is a number or that string; the text format writes the
//! identical token, so an augmented graph survives either pipeline
//! unchanged.
//!
//! ## Streaming
//!
//! The text format is parsed by [`StreamingParser`], which consumes any
//! [`std::io::Read`] source line by line through one reused buffer — a
//! multi-gigabyte log is never materialized as a `String`. [`from_text`] is
//! a thin wrapper over the same parser, so the in-memory and streaming paths
//! cannot drift apart. External tokenizers (e.g. the CSV loader in
//! `tin_datasets`) reuse the record-level entry point
//! [`StreamingParser::push_record`] so that field validation — self-loop
//! rejection, canonical infinity spelling, non-negative quantities — is
//! specified in exactly one place.
//!
//! ## Totality of the text round-trip
//!
//! `to_text` → `from_text` either succeeds or fails loudly; it never writes
//! a line it cannot re-parse. Graphs whose vertex names contain whitespace
//! (legal in the data model, and common when ingesting real CSV files) or
//! that contain self-loops are rejected by [`to_text`] with
//! [`GraphError::Invalid`] — use JSON for those. Symmetrically,
//! [`from_text`] rejects self-loop records (`a a t q`) with a line-numbered
//! error: the DAG pipeline ([`crate::topo`]) treats a self-loop as a cycle,
//! so such records can never reach the flow machinery anyway, and silently
//! accepting them would only defer the failure to a far-away `NotADag`.

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::TemporalGraph;
use crate::interaction::{Interaction, INFINITE_QUANTITY_TOKEN};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read};

/// Serializes a graph to a JSON string.
pub fn to_json(graph: &TemporalGraph) -> String {
    serde_json::to_string(graph).expect("temporal graph serialization cannot fail")
}

/// Deserializes a graph from a JSON string produced by [`to_json`].
///
/// Syntax errors (the input is not well-formed JSON, or its shape does not
/// match the graph schema) are reported as [`GraphError::Parse`] with the
/// offending line. A well-formed document describing an *inconsistent* graph
/// (edges referencing missing vertices, unsorted interaction sequences,
/// broken adjacency) is reported as [`GraphError::Invalid`] so callers can
/// tell malformed input apart from semantically bad input.
pub fn from_json(json: &str) -> Result<TemporalGraph, GraphError> {
    let mut graph: TemporalGraph = serde_json::from_str(json).map_err(|e| GraphError::Parse {
        line: e.line(),
        message: e.to_string(),
    })?;
    graph.rebuild_index();
    graph.validate()?;
    Ok(graph)
}

/// Returns `Err` when `name` cannot be written to the whitespace-separated
/// text format: empty names and names containing whitespace would change the
/// field count on read-back, and a leading `#` would turn the line into a
/// comment.
fn check_text_name(name: &str) -> Result<(), GraphError> {
    let representable =
        !name.is_empty() && !name.starts_with('#') && !name.chars().any(char::is_whitespace);
    if representable {
        Ok(())
    } else {
        Err(GraphError::Invalid {
            message: format!(
                "vertex name {name:?} is not representable in the text format \
                 (empty, contains whitespace, or starts with `#`); use JSON instead"
            ),
        })
    }
}

/// Serializes a graph to the text interchange format: one line per
/// interaction, `<src> <dst> <time> <quantity>`, lines ordered by edge id
/// and interaction position.
///
/// The writer guarantees that [`from_text`] can re-parse its output: graphs
/// with vertex names the format cannot carry (see module docs) or with
/// self-loop edges are rejected with [`GraphError::Invalid`] instead of
/// silently emitting corrupt lines. Isolated vertices do not appear in the
/// output (the format is a pure interaction log); use JSON when they matter.
pub fn to_text(graph: &TemporalGraph) -> Result<String, GraphError> {
    let mut out = String::new();
    for edge in graph.edges() {
        if edge.src == edge.dst {
            return Err(GraphError::Invalid {
                message: format!(
                    "self-loop on vertex {:?} is not representable in the text format \
                     (the reader rejects `a a t q` records)",
                    graph.node(edge.src).name
                ),
            });
        }
        let src = &graph.node(edge.src).name;
        let dst = &graph.node(edge.dst).name;
        check_text_name(src)?;
        check_text_name(dst)?;
        for i in &edge.interactions {
            if i.quantity.is_finite() {
                writeln!(out, "{src} {dst} {} {}", i.time, i.quantity).expect("string write");
            } else {
                writeln!(out, "{src} {dst} {} {INFINITE_QUANTITY_TOKEN}", i.time)
                    .expect("string write");
            }
        }
    }
    Ok(out)
}

/// Parses a timestamp field of the interchange format: a plain `i64`.
///
/// Shared by [`StreamingParser::push_record`] and external tokenizers; the
/// error is a bare message, position context is added by the caller.
pub fn parse_time(field: &str) -> Result<i64, String> {
    field
        .parse()
        .map_err(|_| format!("invalid timestamp `{field}`"))
}

/// Parses a quantity field of the interchange format: the canonical
/// [`INFINITE_QUANTITY_TOKEN`] or a non-negative finite decimal. Rejects
/// non-canonical spellings Rust would otherwise accept (`Infinity`, `NaN`,
/// `-inf`, ...). Does **not** normalize `-0.0`; callers that scale the value
/// first do that via [`StreamingParser::push_parsed`].
pub fn parse_quantity(field: &str) -> Result<f64, String> {
    if field == INFINITE_QUANTITY_TOKEN {
        return Ok(f64::INFINITY);
    }
    let q: f64 = field
        .parse()
        .map_err(|_| format!("invalid quantity `{field}`"))?;
    if !q.is_finite() {
        return Err(format!(
            "non-finite quantity `{field}` (use `{INFINITE_QUANTITY_TOKEN}`)"
        ));
    }
    if q < 0.0 {
        return Err(format!("quantity must be non-negative, got {field}"));
    }
    Ok(q)
}

/// How the streaming parser reacts to unusable records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParseMode {
    /// The first bad record aborts parsing with [`GraphError::Ingest`].
    #[default]
    Strict,
    /// Bad records are skipped and counted ([`StreamingParser::skipped`]);
    /// only I/O failures abort. Use for real-world logs with stray junk.
    Lenient,
}

/// Incremental, bounded-memory parser for `(sender, recipient, timestamp,
/// amount)` record streams.
///
/// The parser feeds a [`GraphBuilder`] one record at a time; the only
/// transient allocation is a single reused line buffer, so memory is bounded
/// by the size of the resulting graph, not the size of the input.
///
/// Two entry points exist:
///
/// * [`StreamingParser::ingest`] / [`StreamingParser::push_line`] parse the
///   whitespace-separated text format (what [`from_text`] wraps);
/// * [`StreamingParser::push_record`] accepts already-tokenized fields from
///   an external tokenizer (the CSV loader in `tin_datasets`), sharing all
///   record-level validation with the text path.
///
/// ```
/// use tin_graph::io::{ParseMode, StreamingParser};
///
/// let mut p = StreamingParser::new(ParseMode::Lenient);
/// p.ingest("a b 1 2.5\njunk line\nb c 2 1\n".as_bytes()).unwrap();
/// assert_eq!(p.records(), 2);
/// assert_eq!(p.skipped(), 1);
/// let g = p.finish();
/// assert_eq!(g.node_count(), 3);
/// ```
#[derive(Debug, Default)]
pub struct StreamingParser {
    builder: GraphBuilder,
    mode: ParseMode,
    /// 1-based number of the line currently being parsed.
    line: usize,
    /// Byte offset of the start of the current line within the source.
    byte_offset: u64,
    records: u64,
    skipped: u64,
}

impl StreamingParser {
    /// Creates a parser with an empty builder.
    pub fn new(mode: ParseMode) -> Self {
        StreamingParser {
            builder: GraphBuilder::new(),
            mode,
            line: 1,
            byte_offset: 0,
            records: 0,
            skipped: 0,
        }
    }

    /// Creates a parser whose position tracking starts at `line` (1-based)
    /// and `byte_offset` instead of the top of the source. Used by chunked
    /// parallel ingestion: a worker parsing a mid-file chunk seeds the
    /// chunk's absolute position so every error and report it produces
    /// points into the original input, not into the chunk.
    pub fn with_position(mode: ParseMode, line: usize, byte_offset: u64) -> Self {
        StreamingParser {
            line,
            byte_offset,
            ..StreamingParser::new(mode)
        }
    }

    /// Number of records accepted so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Number of records skipped so far (always 0 in strict mode).
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// 1-based number of the line the parser currently attributes input to.
    pub fn line(&self) -> usize {
        self.line
    }

    /// Byte offset of the start of the current line.
    pub fn byte_offset(&self) -> u64 {
        self.byte_offset
    }

    /// Constructs a position-stamped ingestion error for the current line.
    pub fn error(&self, column: usize, message: impl Into<String>) -> GraphError {
        GraphError::Ingest {
            line: self.line,
            column,
            byte_offset: self.byte_offset,
            message: message.into(),
        }
    }

    /// Applies the strict/lenient policy to a record-level failure: strict
    /// mode fails with `err`, lenient mode counts a skip and reports "no
    /// record added". External tokenizers route the failures the parser
    /// cannot see (wrong field count, scaling errors) through here so the
    /// policy lives in exactly one place.
    pub fn reject(&mut self, err: GraphError) -> Result<bool, GraphError> {
        match self.mode {
            ParseMode::Strict => Err(err),
            ParseMode::Lenient => {
                self.skipped += 1;
                Ok(false)
            }
        }
    }

    /// Advances the position tracking past the current line, whose raw
    /// on-disk length (including the line terminator) was `raw_bytes`.
    ///
    /// [`StreamingParser::ingest`] calls this internally; external
    /// tokenizers driving [`StreamingParser::push_record`] call it once per
    /// consumed input line.
    pub fn advance_line(&mut self, raw_bytes: usize) {
        self.line += 1;
        self.byte_offset += raw_bytes as u64;
    }

    /// Validates and adds one already-tokenized record at the current input
    /// position. `columns` maps each of the four logical fields (sender,
    /// recipient, timestamp, amount) to the 1-based source column reported
    /// in errors — `[1, 2, 3, 4]` for the text format, the configured
    /// mapping for CSV.
    ///
    /// Returns `Ok(true)` when a record was added, `Ok(false)` when it was
    /// skipped (lenient mode only).
    pub fn push_record(
        &mut self,
        src: &str,
        dst: &str,
        time: &str,
        quantity: &str,
        columns: [usize; 4],
    ) -> Result<bool, GraphError> {
        let time = match parse_time(time) {
            Ok(t) => t,
            Err(message) => {
                let err = self.error(columns[2], message);
                return self.reject(err);
            }
        };
        let quantity = match parse_quantity(quantity) {
            Ok(q) => q,
            Err(message) => {
                let err = self.error(columns[3], message);
                return self.reject(err);
            }
        };
        self.push_parsed(src, dst, time, quantity, columns)
    }

    /// Adds one record whose timestamp and quantity are already numeric.
    ///
    /// External tokenizers that scale fields (unit conversion, fractional
    /// epochs) parse with [`parse_time`] / [`parse_quantity`], apply their
    /// scaling, and enter here; the semantic guards — empty names,
    /// self-loops, NaN or negative quantities, `-0.0` normalization — stay
    /// shared with the text path.
    pub fn push_parsed(
        &mut self,
        src: &str,
        dst: &str,
        time: i64,
        quantity: f64,
        columns: [usize; 4],
    ) -> Result<bool, GraphError> {
        if src.is_empty() {
            let err = self.error(columns[0], "empty sender name");
            return self.reject(err);
        }
        if dst.is_empty() {
            let err = self.error(columns[1], "empty recipient name");
            return self.reject(err);
        }
        if src == dst {
            let err = self.error(
                columns[1],
                format!(
                    "self-loop `{src} -> {dst}` (the DAG pipeline treats self-loops as cycles; \
                     such records are never usable)"
                ),
            );
            return self.reject(err);
        }
        if quantity.is_nan() || quantity < 0.0 {
            let err = self.error(
                columns[3],
                format!("quantity must be non-negative, got {quantity}"),
            );
            return self.reject(err);
        }
        // Normalize the negative zero `-0.0` so totals and comparisons never
        // observe a sign bit on a zero quantity.
        let quantity = if quantity == 0.0 { 0.0 } else { quantity };
        let s = self.builder.get_or_add_node(src);
        let d = self.builder.get_or_add_node(dst);
        self.builder
            .add_interaction(s, d, Interaction::new(time, quantity))
            .expect("self-loops were rejected above");
        self.records += 1;
        Ok(true)
    }

    /// Parses one line of the whitespace-separated text format at the
    /// current position. Blank lines and comment lines (first non-blank
    /// character `#`) are ignored without counting as skips; `#` elsewhere
    /// on a line is data, so trailing comments are rejected like any other
    /// trailing token.
    ///
    /// Does **not** advance the position — the caller owns the line loop and
    /// calls [`StreamingParser::advance_line`] after each line.
    pub fn push_line(&mut self, line: &str) -> Result<bool, GraphError> {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            return Ok(false);
        }
        let mut parts = trimmed.split_whitespace();
        let (src, dst, time, quantity) =
            match (parts.next(), parts.next(), parts.next(), parts.next()) {
                (Some(a), Some(b), Some(c), Some(d)) => (a, b, c, d),
                _ => {
                    let err = self.error(
                        0,
                        format!("expected `src dst time quantity`, got `{trimmed}`"),
                    );
                    return self.reject(err);
                }
            };
        if parts.next().is_some() {
            let err = self.error(5, "trailing tokens after the four expected fields");
            return self.reject(err);
        }
        self.push_record(src, dst, time, quantity, [1, 2, 3, 4])
    }

    /// Streams the whitespace-separated text format from `reader` into the
    /// builder, reusing a single line buffer. I/O failures (including
    /// invalid UTF-8) abort in either mode with [`GraphError::Io`].
    pub fn ingest<R: Read>(&mut self, reader: R) -> Result<(), GraphError> {
        let mut reader = BufReader::new(reader);
        let mut buf = String::new();
        loop {
            buf.clear();
            let n = reader.read_line(&mut buf).map_err(GraphError::from_io)?;
            if n == 0 {
                return Ok(());
            }
            let line = buf.strip_suffix('\n').unwrap_or(&buf);
            let line = line.strip_suffix('\r').unwrap_or(line);
            self.push_line(line)?;
            self.advance_line(n);
        }
    }

    /// Emits everything parsed since the last drain as a
    /// [`crate::GraphDelta`] and keeps parsing: vertex names already seen
    /// still resolve to their identifiers, so a follow-mode ingester can
    /// fold a live log into a graph batch by batch with
    /// [`TemporalGraph::apply`]. Position tracking and the record/skip
    /// counters are *not* reset — they describe the whole stream.
    pub fn drain_delta(&mut self) -> crate::GraphDelta {
        self.builder.drain_delta()
    }

    /// Finalizes the builder into a [`TemporalGraph`].
    ///
    /// # Panics
    /// Panics if deltas were drained ([`StreamingParser::drain_delta`]) —
    /// such a parser feeds an existing graph; apply its final drained delta
    /// instead.
    pub fn finish(self) -> TemporalGraph {
        self.builder.build()
    }
}

/// Parses the text interchange format produced by [`to_text`] (or any
/// whitespace-separated `(sender, recipient, timestamp, amount)` log).
///
/// Thin wrapper over [`StreamingParser`] in strict mode; see the module docs
/// for the format rules (comments, blank lines, the `inf` token, self-loop
/// rejection). Errors carry the 1-based line number, field column and byte
/// offset of the offending record.
pub fn from_text(text: &str) -> Result<TemporalGraph, GraphError> {
    from_reader(text.as_bytes())
}

/// Streams the text interchange format from any [`std::io::Read`] source
/// (strict mode) without materializing it in memory.
pub fn from_reader<R: Read>(reader: R) -> Result<TemporalGraph, GraphError> {
    let mut parser = StreamingParser::new(ParseMode::Strict);
    parser.ingest(reader)?;
    Ok(parser.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_records;

    fn sample() -> TemporalGraph {
        from_records([
            ("u1", "u2", 2, 5.0),
            ("u1", "u2", 4, 3.0),
            ("u2", "u3", 3, 4.0),
            ("u3", "u1", 6, 5.0),
        ])
    }

    #[test]
    fn json_roundtrip_preserves_structure() {
        let g = sample();
        let s = to_json(&g);
        let back = from_json(&s).unwrap();
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.edge_count(), g.edge_count());
        assert_eq!(back.interaction_count(), g.interaction_count());
        assert_eq!(back.total_quantity(), g.total_quantity());
        // Index is rebuilt by from_json.
        let u1 = back.node_by_name("u1").unwrap();
        let u2 = back.node_by_name("u2").unwrap();
        assert!(back.find_edge(u1, u2).is_some());
    }

    #[test]
    fn json_parse_error_is_reported() {
        assert!(matches!(
            from_json("not json"),
            Err(GraphError::Parse { .. })
        ));
    }

    #[test]
    fn json_semantic_failure_is_invalid_not_parse() {
        // Corrupt a well-formed document so that an edge references a
        // vertex that does not exist: the JSON parses, validation fails.
        let s = to_json(&sample());
        let corrupt = s.replacen("\"src\":0", "\"src\":99", 1);
        assert_ne!(s, corrupt, "corruption must hit the serialized edge table");
        match from_json(&corrupt) {
            Err(GraphError::Invalid { message }) => {
                assert!(message.contains("out-of-range"), "got: {message}");
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn text_roundtrip_preserves_structure() {
        let g = sample();
        let s = to_text(&g).unwrap();
        assert_eq!(s.lines().count(), 4);
        let back = from_text(&s).unwrap();
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.edge_count(), g.edge_count());
        assert_eq!(back.interaction_count(), g.interaction_count());
        assert_eq!(back.total_quantity(), g.total_quantity());
    }

    #[test]
    fn to_text_rejects_unrepresentable_names() {
        // Regression: this used to silently emit `acct 7 b 1 2`, which the
        // reader cannot re-parse (five tokens). The writer now errors.
        let g = from_records([("acct 7", "b", 1, 2.0)]);
        match to_text(&g) {
            Err(GraphError::Invalid { message }) => {
                assert!(message.contains("acct 7"), "got: {message}")
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
        for bad in ["", "#tagged", "tab\tname", "new\nline"] {
            let g = from_records([(bad, "b", 1, 2.0)]);
            assert!(
                matches!(to_text(&g), Err(GraphError::Invalid { .. })),
                "name {bad:?} must be rejected"
            );
        }
        // JSON carries the same graph losslessly.
        let g = from_records([("acct 7", "b", 1, 2.0)]);
        let back = from_json(&to_json(&g)).unwrap();
        assert!(back.node_by_name("acct 7").is_some());
    }

    #[test]
    fn to_text_rejects_self_loops() {
        // The builder refuses self-loops, but JSON can still describe them;
        // build the graph from raw parts the way a deserializer would.
        let g = TemporalGraph::from_parts(
            vec![crate::graph::Node { name: "a".into() }],
            vec![crate::graph::Edge {
                src: crate::NodeId(0),
                dst: crate::NodeId(0),
                interactions: vec![Interaction::new(1, 1.0)],
            }],
        );
        assert!(matches!(to_text(&g), Err(GraphError::Invalid { .. })));
    }

    #[test]
    fn from_text_rejects_self_loops_with_position() {
        match from_text("a b 1 2\nc c 3 4\n") {
            Err(GraphError::Ingest {
                line,
                column,
                byte_offset,
                message,
            }) => {
                assert_eq!(line, 2);
                assert_eq!(column, 2);
                assert_eq!(byte_offset, 8); // after "a b 1 2\n"
                assert!(message.contains("self-loop"), "got: {message}");
            }
            other => panic!("expected Ingest, got {other:?}"),
        }
    }

    /// Builds a graph carrying synthetic-source/sink infinities, as produced
    /// by [`crate::dag::augment_with_synthetic_endpoints`].
    fn augmented() -> TemporalGraph {
        let base = from_records([
            ("a", "c", 2, 5.0),
            ("b", "c", 3, 4.0),
            ("c", "d", 5, 6.0),
            ("c", "e", 6, 2.0),
        ]);
        let aug = crate::dag::augment_with_synthetic_endpoints(&base).unwrap();
        assert!(aug.added_source && aug.added_sink);
        aug.graph
    }

    #[test]
    fn json_roundtrip_preserves_infinite_quantities() {
        let g = augmented();
        let infinite_before = g
            .edges()
            .iter()
            .flat_map(|e| &e.interactions)
            .filter(|i| i.is_unbounded())
            .count();
        assert!(infinite_before >= 4); // 2 sources + 2 sinks
        let s = to_json(&g);
        // The lossy `null` representation must not appear; the token must.
        assert!(!s.contains("null"), "lossy null in JSON: {s}");
        assert!(s.contains("\"inf\""));
        let back = from_json(&s).unwrap();
        let infinite_after = back
            .edges()
            .iter()
            .flat_map(|e| &e.interactions)
            .filter(|i| i.is_unbounded())
            .count();
        assert_eq!(infinite_after, infinite_before);
        assert_eq!(back.interaction_count(), g.interaction_count());
    }

    #[test]
    fn text_roundtrip_preserves_infinite_quantities() {
        let g = augmented();
        let s = to_text(&g).unwrap();
        assert!(s.contains(" inf\n"), "missing inf token: {s}");
        let back = from_text(&s).unwrap();
        assert_eq!(back.interaction_count(), g.interaction_count());
        let infinite: usize = back
            .edges()
            .iter()
            .flat_map(|e| &e.interactions)
            .filter(|i| i.is_unbounded())
            .count();
        assert!(infinite >= 4);
        assert!(back.total_quantity().is_infinite());
    }

    #[test]
    fn json_and_text_agree_on_the_infinite_representation() {
        // The same graph written by both formats round-trips identically
        // through either: structure and per-format totals all match.
        let g = augmented();
        let via_json = from_json(&to_json(&g)).unwrap();
        let via_text = from_text(&to_text(&g).unwrap()).unwrap();
        assert_eq!(via_json.node_count(), via_text.node_count());
        assert_eq!(via_json.interaction_count(), via_text.interaction_count());
        let infinities = |g: &TemporalGraph| {
            g.edges()
                .iter()
                .flat_map(|e| &e.interactions)
                .filter(|i| i.is_unbounded())
                .count()
        };
        assert_eq!(infinities(&via_json), infinities(&via_text));
    }

    #[test]
    fn text_parser_rejects_noncanonical_infinity_spellings() {
        for bad in ["Infinity", "NaN", "-inf", "nan", "-Infinity"] {
            assert!(
                matches!(
                    from_text(&format!("a b 1 {bad}")),
                    Err(GraphError::Ingest { line: 1, .. })
                ),
                "spelling {bad:?} must be rejected"
            );
        }
        // The canonical token parses.
        let g = from_text("a b 1 inf").unwrap();
        assert!(g.total_quantity().is_infinite());
    }

    #[test]
    fn text_parser_skips_comments_and_blank_lines() {
        let g = from_text("# header\n\na b 1 2.5\n   \nb c 2 1\n").unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.interaction_count(), 2);
    }

    #[test]
    fn text_parser_rejects_malformed_lines() {
        assert!(matches!(
            from_text("a b 1"),
            Err(GraphError::Ingest { line: 1, .. })
        ));
        assert!(matches!(
            from_text("a b 1 2 3"),
            Err(GraphError::Ingest { line: 1, .. })
        ));
        assert!(matches!(
            from_text("a b xx 2"),
            Err(GraphError::Ingest {
                line: 1,
                column: 3,
                ..
            })
        ));
        assert!(matches!(
            from_text("a b 1 notanumber"),
            Err(GraphError::Ingest {
                line: 1,
                column: 4,
                ..
            })
        ));
        assert!(matches!(
            from_text("a b 1 -5"),
            Err(GraphError::Ingest { line: 1, .. })
        ));
    }

    #[test]
    fn text_parser_reports_correct_line_number() {
        let err = from_text("a b 1 2\nbroken line here now extra\n").unwrap_err();
        match err {
            GraphError::Ingest { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn lenient_mode_skips_and_counts() {
        let mut p = StreamingParser::new(ParseMode::Lenient);
        p.ingest("a b 1 2\nc c 1 1\nx y zz 3\nb c 2 1\n".as_bytes())
            .unwrap();
        assert_eq!(p.records(), 2);
        assert_eq!(p.skipped(), 2);
        let g = p.finish();
        assert_eq!(g.interaction_count(), 2);
        // The skipped self-loop and bad-timestamp vertices never appear.
        assert!(g.node_by_name("x").is_none());
    }

    #[test]
    fn streaming_reader_matches_from_text() {
        let text = "a b 1 2.5\nb c 2 1\n# comment\nc a 3 4\n";
        let via_str = from_text(text).unwrap();
        let via_reader = from_reader(text.as_bytes()).unwrap();
        assert_eq!(via_str.node_count(), via_reader.node_count());
        assert_eq!(via_str.interaction_count(), via_reader.interaction_count());
        assert_eq!(via_str.total_quantity(), via_reader.total_quantity());
    }

    #[test]
    fn push_record_reports_mapped_columns() {
        let mut p = StreamingParser::new(ParseMode::Strict);
        // A CSV loader with amount in source column 7 reports that column.
        let err = p
            .push_record("a", "b", "1", "oops", [2, 3, 5, 7])
            .unwrap_err();
        assert!(matches!(err, GraphError::Ingest { column: 7, .. }));
    }
}
