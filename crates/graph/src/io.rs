//! Persistence of temporal interaction networks.
//!
//! Two formats are supported:
//!
//! * **JSON** via serde — lossless, used for fixtures and tooling;
//! * a compact **text format**, one interaction per line
//!   (`<src-name> <dst-name> <time> <quantity>`), which mirrors the
//!   `(sender, recipient, timestamp, amount)` records the paper builds its
//!   datasets from and is convenient for importing real logs.
//!
//! Both formats use the same lossless representation for the infinite
//! quantities of synthetic source/sink interactions: the tagged token
//! [`INFINITE_QUANTITY_TOKEN`] (`"inf"`). JSON has no infinity literal
//! (upstream `serde_json` writes `null`, which does not round-trip), so the
//! quantity field is a number or that string; the text format writes the
//! identical token, so an augmented graph survives either pipeline
//! unchanged.

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::TemporalGraph;
use crate::interaction::{Interaction, INFINITE_QUANTITY_TOKEN};
use std::fmt::Write as _;

/// Serializes a graph to a JSON string.
pub fn to_json(graph: &TemporalGraph) -> String {
    serde_json::to_string(graph).expect("temporal graph serialization cannot fail")
}

/// Deserializes a graph from a JSON string produced by [`to_json`].
pub fn from_json(json: &str) -> Result<TemporalGraph, GraphError> {
    let mut graph: TemporalGraph = serde_json::from_str(json).map_err(|e| GraphError::Parse {
        line: e.line(),
        message: e.to_string(),
    })?;
    graph.rebuild_index();
    graph
        .validate()
        .map_err(|message| GraphError::Parse { line: 0, message })?;
    Ok(graph)
}

/// Serializes a graph to the text interchange format: one line per
/// interaction, `<src> <dst> <time> <quantity>`, lines ordered by edge id and
/// interaction position. Vertex names must not contain whitespace.
pub fn to_text(graph: &TemporalGraph) -> String {
    let mut out = String::new();
    for edge in graph.edges() {
        let src = &graph.node(edge.src).name;
        let dst = &graph.node(edge.dst).name;
        for i in &edge.interactions {
            if i.quantity.is_finite() {
                writeln!(out, "{src} {dst} {} {}", i.time, i.quantity).expect("string write");
            } else {
                writeln!(out, "{src} {dst} {} {INFINITE_QUANTITY_TOKEN}", i.time)
                    .expect("string write");
            }
        }
    }
    out
}

/// Parses the text interchange format produced by [`to_text`] (or any
/// whitespace-separated `(sender, recipient, timestamp, amount)` log).
///
/// Empty lines and lines starting with `#` are ignored. Vertices are created
/// in order of first appearance.
pub fn from_text(text: &str) -> Result<TemporalGraph, GraphError> {
    let mut b = GraphBuilder::new();
    for (lineno, line) in text.lines().enumerate() {
        let line_number = lineno + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (src, dst, time, quantity) =
            match (parts.next(), parts.next(), parts.next(), parts.next()) {
                (Some(a), Some(b), Some(c), Some(d)) => (a, b, c, d),
                _ => {
                    return Err(GraphError::Parse {
                        line: line_number,
                        message: format!("expected `src dst time quantity`, got `{trimmed}`"),
                    })
                }
            };
        if parts.next().is_some() {
            return Err(GraphError::Parse {
                line: line_number,
                message: "trailing tokens after the four expected fields".into(),
            });
        }
        let time: i64 = time.parse().map_err(|_| GraphError::Parse {
            line: line_number,
            message: format!("invalid timestamp `{time}`"),
        })?;
        let quantity: f64 = if quantity == INFINITE_QUANTITY_TOKEN {
            f64::INFINITY
        } else {
            let q: f64 = quantity.parse().map_err(|_| GraphError::Parse {
                line: line_number,
                message: format!("invalid quantity `{quantity}`"),
            })?;
            if !q.is_finite() {
                // Keep the interchange representation canonical: spellings
                // like `Infinity`/`NaN` that Rust would parse are rejected.
                return Err(GraphError::Parse {
                    line: line_number,
                    message: format!(
                        "non-finite quantity `{quantity}` (use `{INFINITE_QUANTITY_TOKEN}`)"
                    ),
                });
            }
            q
        };
        if quantity < 0.0 {
            return Err(GraphError::Parse {
                line: line_number,
                message: format!("quantity must be non-negative, got {quantity}"),
            });
        }
        let s = b.get_or_add_node(src);
        let d = b.get_or_add_node(dst);
        b.add_interaction(s, d, Interaction::new(time, quantity));
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_records;

    fn sample() -> TemporalGraph {
        from_records([
            ("u1", "u2", 2, 5.0),
            ("u1", "u2", 4, 3.0),
            ("u2", "u3", 3, 4.0),
            ("u3", "u1", 6, 5.0),
        ])
    }

    #[test]
    fn json_roundtrip_preserves_structure() {
        let g = sample();
        let s = to_json(&g);
        let back = from_json(&s).unwrap();
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.edge_count(), g.edge_count());
        assert_eq!(back.interaction_count(), g.interaction_count());
        assert_eq!(back.total_quantity(), g.total_quantity());
        // Index is rebuilt by from_json.
        let u1 = back.node_by_name("u1").unwrap();
        let u2 = back.node_by_name("u2").unwrap();
        assert!(back.find_edge(u1, u2).is_some());
    }

    #[test]
    fn json_parse_error_is_reported() {
        assert!(matches!(
            from_json("not json"),
            Err(GraphError::Parse { .. })
        ));
    }

    #[test]
    fn text_roundtrip_preserves_structure() {
        let g = sample();
        let s = to_text(&g);
        assert_eq!(s.lines().count(), 4);
        let back = from_text(&s).unwrap();
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.edge_count(), g.edge_count());
        assert_eq!(back.interaction_count(), g.interaction_count());
        assert_eq!(back.total_quantity(), g.total_quantity());
    }

    /// Builds a graph carrying synthetic-source/sink infinities, as produced
    /// by [`crate::dag::augment_with_synthetic_endpoints`].
    fn augmented() -> TemporalGraph {
        let base = from_records([
            ("a", "c", 2, 5.0),
            ("b", "c", 3, 4.0),
            ("c", "d", 5, 6.0),
            ("c", "e", 6, 2.0),
        ]);
        let aug = crate::dag::augment_with_synthetic_endpoints(&base).unwrap();
        assert!(aug.added_source && aug.added_sink);
        aug.graph
    }

    #[test]
    fn json_roundtrip_preserves_infinite_quantities() {
        let g = augmented();
        let infinite_before = g
            .edges()
            .iter()
            .flat_map(|e| &e.interactions)
            .filter(|i| i.is_unbounded())
            .count();
        assert!(infinite_before >= 4); // 2 sources + 2 sinks
        let s = to_json(&g);
        // The lossy `null` representation must not appear; the token must.
        assert!(!s.contains("null"), "lossy null in JSON: {s}");
        assert!(s.contains("\"inf\""));
        let back = from_json(&s).unwrap();
        let infinite_after = back
            .edges()
            .iter()
            .flat_map(|e| &e.interactions)
            .filter(|i| i.is_unbounded())
            .count();
        assert_eq!(infinite_after, infinite_before);
        assert_eq!(back.interaction_count(), g.interaction_count());
    }

    #[test]
    fn text_roundtrip_preserves_infinite_quantities() {
        let g = augmented();
        let s = to_text(&g);
        assert!(s.contains(" inf\n"), "missing inf token: {s}");
        let back = from_text(&s).unwrap();
        assert_eq!(back.interaction_count(), g.interaction_count());
        let infinite: usize = back
            .edges()
            .iter()
            .flat_map(|e| &e.interactions)
            .filter(|i| i.is_unbounded())
            .count();
        assert!(infinite >= 4);
        assert!(back.total_quantity().is_infinite());
    }

    #[test]
    fn json_and_text_agree_on_the_infinite_representation() {
        // The same graph written by both formats round-trips identically
        // through either: structure and per-format totals all match.
        let g = augmented();
        let via_json = from_json(&to_json(&g)).unwrap();
        let via_text = from_text(&to_text(&g)).unwrap();
        assert_eq!(via_json.node_count(), via_text.node_count());
        assert_eq!(via_json.interaction_count(), via_text.interaction_count());
        let infinities = |g: &TemporalGraph| {
            g.edges()
                .iter()
                .flat_map(|e| &e.interactions)
                .filter(|i| i.is_unbounded())
                .count()
        };
        assert_eq!(infinities(&via_json), infinities(&via_text));
    }

    #[test]
    fn text_parser_rejects_noncanonical_infinity_spellings() {
        assert!(matches!(
            from_text("a b 1 Infinity"),
            Err(GraphError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            from_text("a b 1 NaN"),
            Err(GraphError::Parse { line: 1, .. })
        ));
        // The canonical token parses.
        let g = from_text("a b 1 inf").unwrap();
        assert!(g.total_quantity().is_infinite());
    }

    #[test]
    fn text_parser_skips_comments_and_blank_lines() {
        let g = from_text("# header\n\na b 1 2.5\n   \nb c 2 1\n").unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.interaction_count(), 2);
    }

    #[test]
    fn text_parser_rejects_malformed_lines() {
        assert!(matches!(
            from_text("a b 1"),
            Err(GraphError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            from_text("a b 1 2 3"),
            Err(GraphError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            from_text("a b xx 2"),
            Err(GraphError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            from_text("a b 1 notanumber"),
            Err(GraphError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            from_text("a b 1 -5"),
            Err(GraphError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn text_parser_reports_correct_line_number() {
        let err = from_text("a b 1 2\nbroken line here now extra\n").unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }
}
