//! Property-based pinning of the append path: folding a record log into a
//! [`TemporalGraph`] as one delta, as many deltas, or through the classic
//! one-shot [`GraphBuilder::build`] must produce the identical graph —
//! identical node/edge identifier assignment, identical interaction
//! sequences, identical adjacency. This is the equivalence that lets
//! downstream incremental indexes trust [`TemporalGraph::apply`].

use proptest::prelude::*;
use tin_graph::{GraphBuilder, Interaction, TemporalGraph};

/// A record log over a small vertex-name pool: `(src, dst, time, quantity)`
/// with duplicates, timestamp ties and out-of-order arrivals all likely.
fn records(max_len: usize) -> impl Strategy<Value = Vec<(u8, u8, i64, f64)>> {
    proptest::collection::vec(
        (0u8..8, 0u8..8, 0i64..40, 0u32..9).prop_map(|(s, d, t, q)| (s, d, t, q as f64)),
        0..max_len,
    )
}

/// Builds the graph through the one-shot builder path, skipping self-loop
/// records the way every ingest path does.
fn build_whole(records: &[(u8, u8, i64, f64)]) -> TemporalGraph {
    let mut b = GraphBuilder::new();
    for &(s, d, t, q) in records {
        let s = b.get_or_add_node(format!("v{s}"));
        let d = b.get_or_add_node(format!("v{d}"));
        if s == d {
            assert!(b.add_interaction(s, d, Interaction::new(t, q)).is_err());
        } else {
            b.add_interaction(s, d, Interaction::new(t, q)).unwrap();
        }
    }
    b.build()
}

/// Folds the same records into an initially empty graph, draining a delta
/// at every index in `splits`.
fn build_split(records: &[(u8, u8, i64, f64)], splits: &[usize]) -> TemporalGraph {
    let mut g = TemporalGraph::new();
    let mut b = GraphBuilder::new();
    for (i, &(s, d, t, q)) in records.iter().enumerate() {
        if splits.contains(&i) {
            g.apply(&b.drain_delta()).unwrap();
        }
        let s = b.get_or_add_node(format!("v{s}"));
        let d = b.get_or_add_node(format!("v{d}"));
        if s != d {
            b.add_interaction(s, d, Interaction::new(t, q)).unwrap();
        }
    }
    g.apply(&b.drain_delta()).unwrap();
    g
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// One delta vs many deltas vs the one-shot builder: identical graphs.
    #[test]
    fn append_order_does_not_change_the_graph(
        records in records(60),
        splits in proptest::collection::vec(0usize..60, 0..6),
    ) {
        let whole = build_whole(&records);
        let one_delta = build_split(&records, &[]);
        let many_deltas = build_split(&records, &splits);
        prop_assert_eq!(&one_delta, &whole);
        prop_assert_eq!(&many_deltas, &whole);
        many_deltas.validate().unwrap();
    }

    /// Every intermediate state of a delta-fed graph passes full validation
    /// (sorted interactions, coherent adjacency and index).
    #[test]
    fn every_prefix_state_is_valid(records in records(40), step in 1usize..7) {
        let mut g = TemporalGraph::new();
        let mut b = GraphBuilder::new();
        for (i, &(s, d, t, q)) in records.iter().enumerate() {
            if i % step == 0 {
                g.apply(&b.drain_delta()).unwrap();
                g.validate().unwrap();
            }
            let s = b.get_or_add_node(format!("v{s}"));
            let d = b.get_or_add_node(format!("v{d}"));
            if s != d {
                b.add_interaction(s, d, Interaction::new(t, q)).unwrap();
            }
        }
        g.apply(&b.drain_delta()).unwrap();
        g.validate().unwrap();
        prop_assert_eq!(&g, &build_whole(&records));
    }
}
