//! Edge-case suite for the text interchange parser, run through **both**
//! entry points — the in-memory [`io::from_text`] wrapper and a
//! [`StreamingParser`] fed by a deliberately awkward chunked reader — to
//! prove the two paths stay equivalent byte for byte.
//!
//! Covered: CRLF line endings, leading/trailing blank lines, comment lines
//! after data, trailing (non-)comments, duplicate records, the `-inf` /
//! `NaN` / `-0.0` quantity corner cases, lenient-mode skip counting,
//! self-loop rejection, and the `to_text` totality regression for vertex
//! names the format cannot carry.

use std::io::Read;
use tin_graph::io::{self, ParseMode, StreamingParser};
use tin_graph::{GraphError, TemporalGraph};

/// A reader that hands out at most three bytes per `read` call, so the
/// streaming path is exercised across chunk boundaries (mid-line, mid-CRLF,
/// mid-token).
struct DribbleReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl Read for DribbleReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = buf.len().min(3).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// Runs `text` through the streaming parser (over the dribble reader) in the
/// given mode, returning the graph plus (records, skipped).
fn stream(text: &str, mode: ParseMode) -> Result<(TemporalGraph, u64, u64), GraphError> {
    let mut p = StreamingParser::new(mode);
    p.ingest(DribbleReader {
        data: text.as_bytes(),
        pos: 0,
    })?;
    let (records, skipped) = (p.records(), p.skipped());
    Ok((p.finish(), records, skipped))
}

/// Asserts that `from_text` and the chunked streaming path agree on `text`:
/// both succeed with structurally identical graphs, or both fail with the
/// same position. Returns the strict outcome for further inspection.
fn assert_equivalent(text: &str) -> Result<TemporalGraph, GraphError> {
    let via_str = io::from_text(text);
    let via_stream = stream(text, ParseMode::Strict).map(|(g, ..)| g);
    match (&via_str, &via_stream) {
        (Ok(a), Ok(b)) => {
            assert_eq!(io::to_json(a), io::to_json(b), "graphs differ for {text:?}");
        }
        (Err(a), Err(b)) => assert_eq!(a, b, "errors differ for {text:?}"),
        (a, b) => panic!("outcomes diverge for {text:?}: str={a:?} stream={b:?}"),
    }
    via_str
}

#[test]
fn crlf_input_parses_like_lf() {
    let lf = "a b 1 2.5\nb c 2 1\n";
    let crlf = "a b 1 2.5\r\nb c 2 1\r\n";
    let g_lf = assert_equivalent(lf).unwrap();
    let g_crlf = assert_equivalent(crlf).unwrap();
    assert_eq!(io::to_json(&g_lf), io::to_json(&g_crlf));
}

#[test]
fn crlf_byte_offsets_count_raw_bytes() {
    // The second line starts after 10 raw bytes ("a b 1 2.5\r\n" is 11...
    // no: 9 chars + CRLF = 11). The error offset must count the \r.
    let text = "a b 1 2.5\r\nc c 3 4\r\n";
    match io::from_text(text) {
        Err(GraphError::Ingest {
            line, byte_offset, ..
        }) => {
            assert_eq!(line, 2);
            assert_eq!(byte_offset, 11);
        }
        other => panic!("expected self-loop rejection, got {other:?}"),
    }
}

#[test]
fn blank_lines_everywhere_are_ignored() {
    let g = assert_equivalent("\n\n  \na b 1 2\n\n   \nb c 2 3\n\n\n").unwrap();
    assert_eq!(g.interaction_count(), 2);
    assert_eq!(g.node_count(), 3);
}

#[test]
fn missing_final_newline_is_fine() {
    let g = assert_equivalent("a b 1 2\nb c 2 3").unwrap();
    assert_eq!(g.interaction_count(), 2);
}

#[test]
fn comment_lines_after_data_are_still_comments() {
    let g = assert_equivalent("a b 1 2\n# checksum: deadbeef\n   # indented too\nb c 2 3\n# eof\n")
        .unwrap();
    assert_eq!(g.interaction_count(), 2);
}

#[test]
fn trailing_comment_on_a_data_line_is_data_not_comment() {
    // `#` only introduces a comment at the start of a line; after the four
    // fields it is a fifth token and strict mode must say so.
    let err = assert_equivalent("a b 1 2 # not a comment\n").unwrap_err();
    assert!(matches!(
        err,
        GraphError::Ingest {
            line: 1,
            column: 5,
            ..
        }
    ));
    // Lenient mode skips the line instead.
    let (g, records, skipped) =
        stream("a b 1 2 # not a comment\nb c 2 3\n", ParseMode::Lenient).unwrap();
    assert_eq!((records, skipped), (1, 1));
    assert_eq!(g.interaction_count(), 1);
}

#[test]
fn duplicate_records_accumulate_on_one_edge() {
    // Two identical (src, dst, time) records are two real transfers (the
    // model keeps full interaction sequences); they merge onto one edge.
    let g = assert_equivalent("a b 5 2.0\na b 5 2.0\na b 5 3.5\n").unwrap();
    assert_eq!(g.edge_count(), 1);
    assert_eq!(g.interaction_count(), 3);
    assert_eq!(g.total_quantity(), 7.5);
}

#[test]
fn negative_infinity_and_nan_are_rejected() {
    for bad in ["-inf", "-Infinity", "NaN", "nan", "-NaN", "inF"] {
        let err = assert_equivalent(&format!("a b 1 {bad}\n")).unwrap_err();
        assert!(
            matches!(
                err,
                GraphError::Ingest {
                    line: 1,
                    column: 4,
                    ..
                }
            ),
            "{bad:?} gave {err:?}"
        );
    }
}

#[test]
fn negative_zero_is_accepted_and_normalized() {
    let g = assert_equivalent("a b 1 -0.0\nb c 2 -0\n").unwrap();
    assert_eq!(g.interaction_count(), 2);
    for e in g.edges() {
        for i in &e.interactions {
            assert_eq!(i.quantity, 0.0);
            assert!(
                i.quantity.is_sign_positive(),
                "-0.0 must be normalized to +0.0"
            );
        }
    }
}

#[test]
fn negative_quantities_are_rejected() {
    let err = assert_equivalent("a b 1 -3.5\n").unwrap_err();
    assert!(matches!(
        err,
        GraphError::Ingest {
            line: 1,
            column: 4,
            ..
        }
    ));
}

#[test]
fn self_loops_are_rejected_with_line_numbers() {
    let err = assert_equivalent("a b 1 2\nb c 2 3\nc c 9 1\n").unwrap_err();
    match err {
        GraphError::Ingest { line, message, .. } => {
            assert_eq!(line, 3);
            assert!(message.contains("self-loop"), "got: {message}");
        }
        other => panic!("expected Ingest, got {other:?}"),
    }
}

#[test]
fn lenient_mode_counts_each_skip_once() {
    let text = "\
# header comment
a b 1 2
bad-field-count
c c 2 2
d e not-a-time 4
e f 3 -inf
f g 4 5

g h 5 six
h i 6 6
";
    // Strict mode stops at the first bad line (line 3).
    let err = assert_equivalent(text).unwrap_err();
    assert!(matches!(err, GraphError::Ingest { line: 3, .. }));
    // Lenient mode skips exactly the five bad lines; blanks and comments do
    // not count as skips.
    let (g, records, skipped) = stream(text, ParseMode::Lenient).unwrap();
    assert_eq!(records, 3, "a→b, f→g, h→i and no others");
    assert_eq!(skipped, 5);
    assert_eq!(g.interaction_count(), 3);
}

#[test]
fn lenient_and_strict_agree_on_clean_input() {
    let text = "a b 1 2\nb c 2 3\nc a 3 4\n";
    let strict = assert_equivalent(text).unwrap();
    let (lenient, records, skipped) = stream(text, ParseMode::Lenient).unwrap();
    assert_eq!(skipped, 0);
    assert_eq!(records, 3);
    assert_eq!(io::to_json(&strict), io::to_json(&lenient));
}

#[test]
fn roundtrip_is_total_for_whitespace_names() {
    // Regression for the silent-corruption bug: a graph with the vertex
    // name "acct 7" used to serialize to `acct 7 b 1 2`, which re-parses as
    // five fields. The writer must refuse instead.
    let g = tin_graph::builder::from_records([("acct 7", "b", 1, 2.0), ("b", "c", 2, 3.0)]);
    match io::to_text(&g) {
        Err(GraphError::Invalid { message }) => {
            assert!(message.contains("acct 7"), "got: {message}")
        }
        Ok(s) => panic!("writer must not emit un-parseable text, got {s:?}"),
        Err(other) => panic!("expected Invalid, got {other:?}"),
    }
    // Every graph to_text does accept round-trips exactly.
    let clean = tin_graph::builder::from_records([("acct_7", "b", 1, 2.0), ("b", "c", 2, 3.0)]);
    let text = io::to_text(&clean).unwrap();
    let back = assert_equivalent(&text).unwrap();
    assert_eq!(io::to_json(&clean), io::to_json(&back));
}
