//! Property-based pinning of the sliding-window eviction path: folding a
//! record log into a [`TemporalGraph`] through windowed deltas (each
//! carrying the monotone frontier `newest seen - window`) must leave
//! exactly the graph a fresh build over the *surviving* records would
//! produce — same live node/edge sets keyed by vertex name, same merged
//! interaction sequences in chronological order — while every intermediate
//! state passes full validation and tombstoned edge identifiers are never
//! reused. This is the retraction-side twin of `delta_equivalence.rs`.

use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet, HashSet};
use tin_graph::{EdgeId, GraphBuilder, Interaction, TemporalGraph};

/// A record log over a small vertex-name pool with duplicates, ties and
/// out-of-order arrivals all likely (self-loops excluded by construction).
fn records(max_len: usize) -> impl Strategy<Value = Vec<(u8, u8, i64, f64)>> {
    proptest::collection::vec(
        (0u8..7, 1u8..7, 0i64..40, 0u32..9)
            .prop_map(|(s, off, t, q)| (s, (s + off) % 7, t, q as f64)),
        0..max_len,
    )
}

/// The live content of a graph, keyed by vertex names so that graphs with
/// different identifier histories (revived pairs get fresh edge ids) compare
/// on what the paper cares about: which interactions each ordered vertex
/// pair carries, in chronological order.
fn live_content(g: &TemporalGraph) -> BTreeMap<(String, String), Vec<(i64, f64)>> {
    let mut content = BTreeMap::new();
    for e in g.edges() {
        if e.is_tombstone() {
            continue;
        }
        let key = (g.node(e.src).name.clone(), g.node(e.dst).name.clone());
        let seq: Vec<(i64, f64)> = e
            .interactions
            .iter()
            .map(|i| (i.time, i.quantity))
            .collect();
        assert!(
            content.insert(key, seq).is_none(),
            "at most one live edge per ordered vertex pair"
        );
    }
    content
}

/// Names of the vertices with at least one live incident edge.
fn live_names(g: &TemporalGraph) -> BTreeSet<String> {
    live_content(g)
        .into_keys()
        .flat_map(|(s, d)| [s, d])
        .collect()
}

/// Folds `records` into a graph through windowed deltas cut at `splits`,
/// attaching the frontier `newest staged timestamp - window` to every batch
/// (exactly what `DeltaStream::window` emits). Checks at every boundary that
/// the state validates and that no tombstoned edge id is ever reassigned.
/// Returns the graph and the final frontier.
fn build_windowed(
    records: &[(u8, u8, i64, f64)],
    splits: &[usize],
    window: i64,
) -> (TemporalGraph, Option<i64>) {
    let mut g = TemporalGraph::new();
    let mut b = GraphBuilder::new();
    let mut max_seen: Option<i64> = None;
    let mut ever_removed: HashSet<EdgeId> = HashSet::new();
    let mut frontier = None;
    let flush = |g: &mut TemporalGraph,
                 b: &mut GraphBuilder,
                 max_seen: Option<i64>,
                 ever_removed: &mut HashSet<EdgeId>,
                 frontier: &mut Option<i64>| {
        let mut delta = b.drain_delta();
        if let Some(newest) = max_seen {
            let f = newest.saturating_sub(window);
            delta = delta.expire_before(f);
            *frontier = Some(f);
        }
        let applied = g.apply(&delta).unwrap();
        g.validate().unwrap();
        for e in &applied.new_edges {
            assert!(
                !ever_removed.contains(e),
                "tombstoned edge id {e:?} was reused"
            );
        }
        ever_removed.extend(applied.removed_edges.iter().copied());
        for &e in &applied.removed_edges {
            assert!(g.is_tombstone(e));
        }
    };
    for (i, &(s, d, t, q)) in records.iter().enumerate() {
        if splits.contains(&i) {
            flush(&mut g, &mut b, max_seen, &mut ever_removed, &mut frontier);
        }
        let s = b.get_or_add_node(format!("v{s}"));
        let d = b.get_or_add_node(format!("v{d}"));
        b.add_interaction(s, d, Interaction::new(t, q)).unwrap();
        if max_seen.is_none_or(|m| t > m) {
            max_seen = Some(t);
        }
    }
    flush(&mut g, &mut b, max_seen, &mut ever_removed, &mut frontier);
    (g, frontier)
}

/// A fresh one-shot build over only the records at or after `frontier`.
fn build_surviving(records: &[(u8, u8, i64, f64)], frontier: Option<i64>) -> TemporalGraph {
    let mut b = GraphBuilder::new();
    for &(s, d, t, q) in records {
        if frontier.is_some_and(|f| t < f) {
            continue;
        }
        let s = b.get_or_add_node(format!("v{s}"));
        let d = b.get_or_add_node(format!("v{d}"));
        b.add_interaction(s, d, Interaction::new(t, q)).unwrap();
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Windowed delta application ≡ fresh build from the surviving records:
    /// identical live node/edge sets, merged quantities and chronological
    /// sequences — for any log, any batching, any window.
    #[test]
    fn windowed_apply_equals_fresh_build_on_survivors(
        records in records(50),
        splits in proptest::collection::vec(0usize..50, 0..8),
        window in 0i64..45,
    ) {
        let (g, frontier) = build_windowed(&records, &splits, window);
        let survivors = build_surviving(&records, frontier);
        prop_assert_eq!(live_content(&g), live_content(&survivors));
        prop_assert_eq!(live_names(&g), live_names(&survivors));
        prop_assert_eq!(g.interaction_count(), survivors.interaction_count());
        prop_assert_eq!(g.total_quantity(), survivors.total_quantity());
        prop_assert_eq!(g.min_time(), survivors.min_time());
        prop_assert_eq!(g.live_edge_count(), survivors.edge_count());
        prop_assert_eq!(g.live_node_count(), live_names(&survivors).len());
        // Vertices are never forgotten, only edges expire.
        prop_assert!(g.node_count() >= survivors.node_count());
    }

    /// A window larger than the whole log evicts nothing: the graph's live
    /// content is exactly the append-only build's.
    #[test]
    fn window_larger_than_the_log_changes_nothing(
        records in records(40),
        splits in proptest::collection::vec(0usize..40, 0..6),
    ) {
        let (g, _) = build_windowed(&records, &splits, 1_000);
        let plain = build_surviving(&records, None);
        prop_assert_eq!(live_content(&g), live_content(&plain));
        prop_assert_eq!(g.edge_count(), plain.edge_count(), "no tombstones at all");
    }

    /// Single-record batches — the most adversarial batching — agree with
    /// any coarser batching of the same windowed log.
    #[test]
    fn batching_does_not_change_the_windowed_graph(
        records in records(30),
        splits in proptest::collection::vec(0usize..30, 0..6),
        window in 0i64..45,
    ) {
        let per_record: Vec<usize> = (0..records.len()).collect();
        let (fine, f1) = build_windowed(&records, &per_record, window);
        let (coarse, f2) = build_windowed(&records, &splits, window);
        prop_assert_eq!(f1, f2);
        prop_assert_eq!(live_content(&fine), live_content(&coarse));
    }
}

/// JSON round-trips preserve the window state: the frontier and the
/// tombstone layout survive, the restored graph validates, and further
/// windowed deltas apply cleanly.
#[test]
fn windowed_graph_round_trips_through_json() {
    let log = [
        (0u8, 1u8, 1i64, 2.0f64),
        (1, 2, 3, 1.0),
        (2, 0, 5, 4.0),
        (0, 1, 9, 1.0),
    ];
    let (g, frontier) = build_windowed(&log, &[2], 4);
    assert!(frontier.is_some());
    assert!(g.edges().iter().any(|e| e.is_tombstone()));
    let mut back = tin_graph::io::from_json(&tin_graph::io::to_json(&g)).unwrap();
    assert_eq!(back.frontier(), g.frontier());
    assert_eq!(live_content(&back), live_content(&g));
    back.validate().unwrap();
    // The restored graph accepts further windowed deltas (the eviction heap
    // is rebuilt lazily on first use).
    let delta = tin_graph::GraphDelta::new(back.node_count(), vec![], vec![])
        .unwrap()
        .expire_before(100);
    back.apply(&delta).unwrap();
    back.validate().unwrap();
    assert_eq!(back.interaction_count(), 0);
}
