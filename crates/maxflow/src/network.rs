//! Residual-arc representation of a static capacitated network.

/// Identifier of a directed arc inside a [`FlowNetwork`].
///
/// Arcs are stored in forward/backward pairs: arc `2k` is the forward arc and
/// `2k + 1` its residual companion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArcId(pub usize);

#[derive(Debug, Clone)]
struct Arc {
    to: usize,
    cap: f64,
}

/// A static directed network with arc capacities, stored as adjacency lists
/// of residual arc indices — the classic representation used by augmenting
/// path max-flow algorithms.
#[derive(Debug, Clone, Default)]
pub struct FlowNetwork {
    arcs: Vec<Arc>,
    adjacency: Vec<Vec<usize>>,
}

impl FlowNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a network with `n` pre-allocated nodes (ids `0..n`).
    pub fn with_nodes(n: usize) -> Self {
        FlowNetwork {
            arcs: Vec::new(),
            adjacency: vec![Vec::new(); n],
        }
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self) -> usize {
        self.adjacency.push(Vec::new());
        self.adjacency.len() - 1
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of forward arcs (residual companions are not counted).
    pub fn arc_count(&self) -> usize {
        self.arcs.len() / 2
    }

    /// Adds a directed arc `from → to` with capacity `cap` and returns its
    /// identifier. Capacities must be non-negative and finite; model
    /// "unbounded" arcs with a large finite value (see
    /// [`crate::time_expanded`]).
    ///
    /// # Panics
    /// Panics if a node id is out of range or the capacity is negative,
    /// NaN or infinite.
    pub fn add_arc(&mut self, from: usize, to: usize, cap: f64) -> ArcId {
        assert!(
            from < self.adjacency.len(),
            "arc source {from} out of range"
        );
        assert!(to < self.adjacency.len(), "arc target {to} out of range");
        assert!(
            cap.is_finite() && cap >= 0.0,
            "arc capacity must be finite and non-negative, got {cap}"
        );
        let id = self.arcs.len();
        self.arcs.push(Arc { to, cap });
        self.arcs.push(Arc { to: from, cap: 0.0 });
        self.adjacency[from].push(id);
        self.adjacency[to].push(id + 1);
        ArcId(id)
    }

    /// Remaining capacity of the forward direction of `arc`.
    pub fn residual(&self, arc: ArcId) -> f64 {
        self.arcs[arc.0].cap
    }

    /// Flow currently routed through `arc` (capacity accumulated on its
    /// residual companion).
    pub fn flow(&self, arc: ArcId) -> f64 {
        self.arcs[arc.0 + 1].cap
    }

    pub(crate) fn arc_to(&self, idx: usize) -> usize {
        self.arcs[idx].to
    }

    pub(crate) fn arc_cap(&self, idx: usize) -> f64 {
        self.arcs[idx].cap
    }

    pub(crate) fn push(&mut self, idx: usize, amount: f64) {
        self.arcs[idx].cap -= amount;
        self.arcs[idx ^ 1].cap += amount;
    }

    pub(crate) fn adjacency(&self, node: usize) -> &[usize] {
        &self.adjacency[node]
    }

    /// Resets all flow, restoring the original capacities.
    pub fn reset(&mut self) {
        for pair in self.arcs.chunks_mut(2) {
            let flow = pair[1].cap;
            if flow != 0.0 {
                pair[0].cap += flow;
                pair[1].cap = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut net = FlowNetwork::with_nodes(3);
        assert_eq!(net.node_count(), 3);
        let extra = net.add_node();
        assert_eq!(extra, 3);
        let a = net.add_arc(0, 1, 5.0);
        let b = net.add_arc(1, 2, 3.0);
        assert_eq!(net.arc_count(), 2);
        assert_eq!(net.residual(a), 5.0);
        assert_eq!(net.flow(b), 0.0);
    }

    #[test]
    fn push_updates_residuals() {
        let mut net = FlowNetwork::with_nodes(2);
        let a = net.add_arc(0, 1, 5.0);
        net.push(a.0, 2.0);
        assert_eq!(net.residual(a), 3.0);
        assert_eq!(net.flow(a), 2.0);
        net.reset();
        assert_eq!(net.residual(a), 5.0);
        assert_eq!(net.flow(a), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_arc_panics() {
        let mut net = FlowNetwork::with_nodes(1);
        net.add_arc(0, 5, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn infinite_capacity_is_rejected() {
        let mut net = FlowNetwork::with_nodes(2);
        net.add_arc(0, 1, f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_capacity_is_rejected() {
        let mut net = FlowNetwork::with_nodes(2);
        net.add_arc(0, 1, -1.0);
    }
}
