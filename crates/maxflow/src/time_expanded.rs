//! Reduction of temporal maximum flow to static maximum flow.
//!
//! Section 4.2.1 of the paper notes that its maximum-flow problem is
//! equivalent to the temporal-flow problem of Akrida et al., which can be
//! converted to a classic max-flow instance by creating one copy of every
//! vertex per activity time. This module implements that reduction directly
//! on [`tin_graph::TemporalGraph`]s:
//!
//! * every vertex `v` (other than the flow source and sink) gets one node per
//!   **arrival time** (timestamp of an incoming interaction), chained by
//!   "holdover" arcs of unbounded capacity — the buffer carrying quantity
//!   forward in time;
//! * an interaction `(t, q)` on edge `(u, v)` becomes an arc of capacity `q`
//!   from the latest copy of `u` *strictly before* `t` (the paper's strict
//!   precedence rule) to the copy of `v` at time `t`;
//! * the flow source is a single node (its buffer is infinite at all times),
//!   and so is the sink (it only accumulates).
//!
//! The maximum `s`–`t` flow of the resulting static network equals the
//! maximum temporal flow; we solve it with Dinic's algorithm. This is used
//! both as a fast exact solver and as the oracle against which the LP
//! formulation is verified.

use crate::dinic::dinic;
use crate::network::FlowNetwork;
use tin_graph::{NodeId, Quantity, TemporalGraph, Time};

/// The static network produced by the time-expanded reduction, together with
/// bookkeeping that makes the construction inspectable in tests.
#[derive(Debug)]
pub struct TimeExpandedNetwork {
    /// The static capacitated network.
    pub network: FlowNetwork,
    /// Node id of the flow source inside [`Self::network`].
    pub source: usize,
    /// Node id of the flow sink inside [`Self::network`].
    pub sink: usize,
    /// Number of per-(vertex, arrival-time) copies created.
    pub copy_count: usize,
    /// Number of interaction arcs created (interactions whose source vertex
    /// could not yet have received anything are dropped).
    pub interaction_arcs: usize,
    /// Number of interactions skipped because they cannot carry any flow.
    pub skipped_interactions: usize,
    /// The finite stand-in used for unbounded capacities.
    pub unbounded_capacity: f64,
}

impl TimeExpandedNetwork {
    /// Builds the time-expanded network of `graph` for flow from `source` to
    /// `sink`.
    pub fn build(graph: &TemporalGraph, source: NodeId, sink: NodeId) -> Self {
        // Finite stand-in for "unbounded": no s-t flow can exceed the total
        // finite quantity in the graph, so this value never constrains an
        // optimal solution.
        let finite_total: f64 = graph
            .edges()
            .iter()
            .flat_map(|e| e.interactions.iter())
            .map(|i| {
                if i.quantity.is_finite() {
                    i.quantity
                } else {
                    0.0
                }
            })
            .sum();
        let unbounded = finite_total + 1.0;

        // Collect arrival times per vertex (excluding the flow endpoints).
        let n = graph.node_count();
        let mut arrivals: Vec<Vec<Time>> = vec![Vec::new(); n];
        for edge in graph.edges() {
            if edge.dst == source || edge.dst == sink {
                continue;
            }
            for i in &edge.interactions {
                arrivals[edge.dst.index()].push(i.time);
            }
        }
        for list in arrivals.iter_mut() {
            list.sort_unstable();
            list.dedup();
        }

        // Assign node ids: 0 = source, 1 = sink, then vertex copies.
        let mut net = FlowNetwork::with_nodes(2);
        let src_node = 0usize;
        let sink_node = 1usize;
        let mut first_copy: Vec<usize> = vec![usize::MAX; n];
        let mut copy_count = 0usize;
        for (v, list) in arrivals.iter().enumerate() {
            if list.is_empty() {
                continue;
            }
            first_copy[v] = net.node_count();
            for _ in list {
                net.add_node();
            }
            copy_count += list.len();
            // Holdover arcs carry buffered quantity forward in time.
            for k in 0..list.len() - 1 {
                net.add_arc(first_copy[v] + k, first_copy[v] + k + 1, unbounded);
            }
        }

        // Interaction arcs.
        let mut interaction_arcs = 0usize;
        let mut skipped = 0usize;
        for edge in graph.edges() {
            if edge.src == sink || edge.dst == source {
                // Outgoing interactions of the sink and incoming interactions
                // of the source cannot contribute to the s-t flow.
                skipped += edge.interactions.len();
                continue;
            }
            for inter in &edge.interactions {
                let cap = if inter.quantity.is_finite() {
                    inter.quantity
                } else {
                    unbounded
                };
                // Tail: the latest copy of the edge source strictly before t.
                let tail = if edge.src == source {
                    Some(src_node)
                } else {
                    let list = &arrivals[edge.src.index()];
                    match list.partition_point(|&at| at < inter.time) {
                        0 => None, // nothing can have arrived yet
                        k => Some(first_copy[edge.src.index()] + (k - 1)),
                    }
                };
                let Some(tail) = tail else {
                    skipped += 1;
                    continue;
                };
                // Head: the copy of the destination at exactly t.
                let head = if edge.dst == sink {
                    sink_node
                } else {
                    let list = &arrivals[edge.dst.index()];
                    let k = list.partition_point(|&at| at < inter.time);
                    debug_assert!(k < list.len() && list[k] == inter.time);
                    first_copy[edge.dst.index()] + k
                };
                net.add_arc(tail, head, cap);
                interaction_arcs += 1;
            }
        }

        TimeExpandedNetwork {
            network: net,
            source: src_node,
            sink: sink_node,
            copy_count,
            interaction_arcs,
            skipped_interactions: skipped,
            unbounded_capacity: unbounded,
        }
    }

    /// Solves the static max-flow problem with Dinic's algorithm and returns
    /// the maximum temporal flow value.
    pub fn max_flow(&mut self) -> Quantity {
        let TimeExpandedNetwork {
            network,
            source,
            sink,
            ..
        } = self;
        dinic(network, *source, *sink)
    }
}

/// Convenience wrapper: builds the time-expanded network and returns the
/// maximum flow from `source` to `sink` in `graph`.
pub fn time_expanded_max_flow(graph: &TemporalGraph, source: NodeId, sink: NodeId) -> Quantity {
    TimeExpandedNetwork::build(graph, source, sink).max_flow()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tin_graph::GraphBuilder;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "expected {b}, got {a}");
    }

    /// Figure 3 of the paper: greedy yields 1 but the maximum flow is 5.
    fn figure3() -> (TemporalGraph, NodeId, NodeId) {
        let mut b = GraphBuilder::new();
        let s = b.add_node("s");
        let y = b.add_node("y");
        let z = b.add_node("z");
        let t = b.add_node("t");
        b.add_pairs(s, y, &[(1, 5.0)]).unwrap();
        b.add_pairs(s, z, &[(2, 3.0)]).unwrap();
        b.add_pairs(y, z, &[(3, 5.0)]).unwrap();
        b.add_pairs(y, t, &[(4, 4.0)]).unwrap();
        b.add_pairs(z, t, &[(5, 1.0)]).unwrap();
        (b.build(), s, t)
    }

    /// Figure 1(a) of the paper: maximum flow from s to t is 5.
    fn figure1() -> (TemporalGraph, NodeId, NodeId) {
        let mut b = GraphBuilder::new();
        let s = b.add_node("s");
        let x = b.add_node("x");
        let y = b.add_node("y");
        let z = b.add_node("z");
        let t = b.add_node("t");
        b.add_pairs(s, x, &[(1, 3.0), (7, 5.0)]).unwrap();
        b.add_pairs(s, y, &[(2, 6.0)]).unwrap();
        b.add_pairs(x, z, &[(5, 5.0)]).unwrap();
        b.add_pairs(y, z, &[(8, 5.0)]).unwrap();
        b.add_pairs(y, t, &[(9, 4.0)]).unwrap();
        b.add_pairs(z, t, &[(2, 3.0), (10, 1.0)]).unwrap();
        (b.build(), s, t)
    }

    #[test]
    fn figure3_maximum_flow_is_five() {
        let (g, s, t) = figure3();
        assert_close(time_expanded_max_flow(&g, s, t), 5.0);
    }

    #[test]
    fn figure1_maximum_flow_is_five() {
        let (g, s, t) = figure1();
        assert_close(time_expanded_max_flow(&g, s, t), 5.0);
    }

    #[test]
    fn strict_precedence_blocks_same_timestamp_relay() {
        // y receives at time 3 and tries to forward at time 3: nothing may
        // move because forwarding requires strictly earlier arrival.
        let mut b = GraphBuilder::new();
        let s = b.add_node("s");
        let y = b.add_node("y");
        let t = b.add_node("t");
        b.add_pairs(s, y, &[(3, 4.0)]).unwrap();
        b.add_pairs(y, t, &[(3, 4.0)]).unwrap();
        let g = b.build();
        assert_close(time_expanded_max_flow(&g, s, t), 0.0);
    }

    #[test]
    fn chain_bottleneck() {
        // s -> a -> t where a forwards later than it receives.
        let mut b = GraphBuilder::new();
        let s = b.add_node("s");
        let a = b.add_node("a");
        let t = b.add_node("t");
        b.add_pairs(s, a, &[(1, 10.0)]).unwrap();
        b.add_pairs(a, t, &[(2, 3.0), (4, 2.0)]).unwrap();
        let g = b.build();
        assert_close(time_expanded_max_flow(&g, s, t), 5.0);
    }

    #[test]
    fn out_of_order_interactions_cannot_be_used() {
        // The forwarding interaction happens before anything has arrived.
        let mut b = GraphBuilder::new();
        let s = b.add_node("s");
        let a = b.add_node("a");
        let t = b.add_node("t");
        b.add_pairs(s, a, &[(5, 10.0)]).unwrap();
        b.add_pairs(a, t, &[(2, 3.0)]).unwrap();
        let g = b.build();
        let mut te = TimeExpandedNetwork::build(&g, s, t);
        assert_eq!(te.skipped_interactions, 1);
        assert_close(te.max_flow(), 0.0);
    }

    #[test]
    fn reservation_beats_greedy() {
        // The structure from Table 3: holding quantity back at y lets more
        // reach the sink than greedy forwarding.
        let (g, s, t) = figure3();
        let mut te = TimeExpandedNetwork::build(&g, s, t);
        assert!(te.copy_count >= 3);
        assert_close(te.max_flow(), 5.0);
    }

    #[test]
    fn unbounded_interactions_are_capped_but_do_not_limit() {
        // Synthetic-source style edge with infinite quantity followed by a
        // finite edge: the answer is the finite quantity.
        let mut b = GraphBuilder::new();
        let s = b.add_node("s");
        let a = b.add_node("a");
        let t = b.add_node("t");
        b.add_interaction(s, a, tin_graph::Interaction::new(i64::MIN, f64::INFINITY))
            .unwrap();
        b.add_pairs(a, t, &[(10, 7.0)]).unwrap();
        let g = b.build();
        assert_close(time_expanded_max_flow(&g, s, t), 7.0);
    }

    #[test]
    fn multiple_interactions_per_edge() {
        let mut b = GraphBuilder::new();
        let s = b.add_node("s");
        let a = b.add_node("a");
        let c = b.add_node("c");
        let t = b.add_node("t");
        b.add_pairs(s, a, &[(1, 2.0), (3, 2.0), (5, 2.0)]).unwrap();
        b.add_pairs(a, c, &[(2, 1.0), (4, 3.0), (6, 3.0)]).unwrap();
        b.add_pairs(c, t, &[(7, 10.0)]).unwrap();
        let g = b.build();
        // a receives 2/2/2; can forward min cumulative: at time 2 ≤2 cap1 ->1,
        // time 4: arrived 4, already sent 1, cap 3 -> 3, time 6: arrived 6,
        // sent 4, cap 3 -> 2. Total into c = 6, all forwarded at 7.
        assert_close(time_expanded_max_flow(&g, s, t), 6.0);
    }

    #[test]
    fn empty_graph_and_trivial_cases() {
        let mut b = GraphBuilder::new();
        let s = b.add_node("s");
        let t = b.add_node("t");
        let g = b.build();
        assert_close(time_expanded_max_flow(&g, s, t), 0.0);

        let mut b = GraphBuilder::new();
        let s = b.add_node("s");
        let t = b.add_node("t");
        b.add_pairs(s, t, &[(1, 4.0), (9, 2.5)]).unwrap();
        let g = b.build();
        assert_close(time_expanded_max_flow(&g, s, t), 6.5);
    }

    #[test]
    fn construction_statistics_are_reported() {
        let (g, s, t) = figure1();
        let te = TimeExpandedNetwork::build(&g, s, t);
        // x has 2 arrivals, y 1, z 2 => 5 copies.
        assert_eq!(te.copy_count, 5);
        assert!(te.interaction_arcs <= g.interaction_count());
        assert!(te.unbounded_capacity > 0.0);
    }
}
