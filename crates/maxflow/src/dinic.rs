//! Dinic's blocking-flow maximum flow algorithm.

use crate::network::FlowNetwork;

/// Capacities below this threshold are treated as exhausted, which keeps the
/// algorithm robust with floating-point capacities.
const EPS: f64 = 1e-9;

/// Computes the maximum flow from `source` to `sink` with Dinic's algorithm.
///
/// The network is mutated in place (flow is recorded on the residual arcs);
/// call [`FlowNetwork::reset`] to reuse it. Returns the total flow value.
///
/// Complexity: `O(V² · E)` in general, much faster in practice; on unit
/// networks it is `O(E · √V)`.
pub fn dinic(net: &mut FlowNetwork, source: usize, sink: usize) -> f64 {
    assert!(source < net.node_count(), "source out of range");
    assert!(sink < net.node_count(), "sink out of range");
    if source == sink {
        return 0.0;
    }
    let n = net.node_count();
    let mut total = 0.0;
    let mut level = vec![-1i32; n];
    let mut iter = vec![0usize; n];
    loop {
        // BFS to build the level graph.
        level.iter_mut().for_each(|l| *l = -1);
        level[source] = 0;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(source);
        while let Some(v) = queue.pop_front() {
            for &a in net.adjacency(v) {
                let to = net.arc_to(a);
                if net.arc_cap(a) > EPS && level[to] < 0 {
                    level[to] = level[v] + 1;
                    queue.push_back(to);
                }
            }
        }
        if level[sink] < 0 {
            break;
        }
        // DFS blocking flow.
        iter.iter_mut().for_each(|i| *i = 0);
        loop {
            let pushed = dfs(net, source, sink, f64::INFINITY, &level, &mut iter);
            if pushed <= EPS {
                break;
            }
            total += pushed;
        }
    }
    total
}

/// Iterative DFS that pushes one augmenting path of the level graph.
fn dfs(
    net: &mut FlowNetwork,
    source: usize,
    sink: usize,
    _limit: f64,
    level: &[i32],
    iter: &mut [usize],
) -> f64 {
    // Path of (node, arc chosen from node).
    let mut path: Vec<usize> = Vec::new();
    let mut current = source;
    loop {
        if current == sink {
            // Bottleneck along the recorded arc path.
            let mut bottleneck = f64::INFINITY;
            for &a in &path {
                bottleneck = bottleneck.min(net.arc_cap(a));
            }
            for &a in &path {
                net.push(a, bottleneck);
            }
            return bottleneck;
        }
        let adjacency_len = net.adjacency(current).len();
        let mut advanced = false;
        while iter[current] < adjacency_len {
            let a = net.adjacency(current)[iter[current]];
            let to = net.arc_to(a);
            if net.arc_cap(a) > EPS && level[to] == level[current] + 1 {
                path.push(a);
                current = to;
                advanced = true;
                break;
            }
            iter[current] += 1;
        }
        if advanced {
            continue;
        }
        // Dead end: retreat.
        if current == source {
            return 0.0;
        }
        let a = path
            .pop()
            .expect("non-source dead end must have a parent arc");
        // Find the node we came from: the residual companion's target.
        let parent = net.arc_to(a ^ 1);
        iter[parent] += 1;
        current = parent;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "expected {b}, got {a}");
    }

    #[test]
    fn single_edge() {
        let mut net = FlowNetwork::with_nodes(2);
        net.add_arc(0, 1, 7.5);
        assert_close(dinic(&mut net, 0, 1), 7.5);
    }

    #[test]
    fn series_takes_the_minimum() {
        let mut net = FlowNetwork::with_nodes(3);
        net.add_arc(0, 1, 4.0);
        net.add_arc(1, 2, 9.0);
        assert_close(dinic(&mut net, 0, 2), 4.0);
    }

    #[test]
    fn parallel_paths_add_up() {
        let mut net = FlowNetwork::with_nodes(4);
        net.add_arc(0, 1, 3.0);
        net.add_arc(1, 3, 3.0);
        net.add_arc(0, 2, 2.0);
        net.add_arc(2, 3, 5.0);
        assert_close(dinic(&mut net, 0, 3), 5.0);
    }

    #[test]
    fn classic_clrs_network() {
        // CLRS figure 26.1: max flow 23.
        let mut net = FlowNetwork::with_nodes(6);
        let (s, v1, v2, v3, v4, t) = (0, 1, 2, 3, 4, 5);
        net.add_arc(s, v1, 16.0);
        net.add_arc(s, v2, 13.0);
        net.add_arc(v1, v3, 12.0);
        net.add_arc(v2, v1, 4.0);
        net.add_arc(v2, v4, 14.0);
        net.add_arc(v3, v2, 9.0);
        net.add_arc(v3, t, 20.0);
        net.add_arc(v4, v3, 7.0);
        net.add_arc(v4, t, 4.0);
        assert_close(dinic(&mut net, s, t), 23.0);
    }

    #[test]
    fn requires_residual_edges_to_reroute() {
        // Without residual arcs, a greedy routing through the middle edge
        // gets stuck at 1; the true max flow is 2.
        let mut net = FlowNetwork::with_nodes(4);
        net.add_arc(0, 1, 1.0);
        net.add_arc(0, 2, 1.0);
        net.add_arc(1, 2, 1.0);
        net.add_arc(1, 3, 1.0);
        net.add_arc(2, 3, 1.0);
        assert_close(dinic(&mut net, 0, 3), 2.0);
    }

    #[test]
    fn disconnected_sink_gives_zero() {
        let mut net = FlowNetwork::with_nodes(4);
        net.add_arc(0, 1, 5.0);
        net.add_arc(2, 3, 5.0);
        assert_close(dinic(&mut net, 0, 3), 0.0);
    }

    #[test]
    fn source_equals_sink() {
        let mut net = FlowNetwork::with_nodes(2);
        net.add_arc(0, 1, 5.0);
        assert_close(dinic(&mut net, 0, 0), 0.0);
    }

    #[test]
    fn fractional_capacities() {
        let mut net = FlowNetwork::with_nodes(4);
        net.add_arc(0, 1, 0.25);
        net.add_arc(0, 2, 0.5);
        net.add_arc(1, 3, 1.0);
        net.add_arc(2, 3, 0.3);
        assert_close(dinic(&mut net, 0, 3), 0.55);
    }

    #[test]
    fn flow_is_recorded_on_arcs() {
        let mut net = FlowNetwork::with_nodes(3);
        let a = net.add_arc(0, 1, 4.0);
        let b = net.add_arc(1, 2, 2.0);
        dinic(&mut net, 0, 2);
        assert_close(net.flow(a), 2.0);
        assert_close(net.flow(b), 2.0);
        assert_close(net.residual(a), 2.0);
    }

    #[test]
    fn reset_allows_reuse() {
        let mut net = FlowNetwork::with_nodes(3);
        net.add_arc(0, 1, 4.0);
        net.add_arc(1, 2, 2.0);
        assert_close(dinic(&mut net, 0, 2), 2.0);
        net.reset();
        assert_close(dinic(&mut net, 0, 2), 2.0);
    }

    #[test]
    fn larger_layered_network() {
        // A 3-layer network where each layer halves the available capacity.
        let mut net = FlowNetwork::with_nodes(2 + 3 + 3);
        let s = 0;
        let t = 1;
        let a: Vec<usize> = vec![2, 3, 4];
        let b: Vec<usize> = vec![5, 6, 7];
        for &x in &a {
            net.add_arc(s, x, 10.0);
        }
        for &x in &a {
            for &y in &b {
                net.add_arc(x, y, 2.0);
            }
        }
        for &y in &b {
            net.add_arc(y, t, 5.0);
        }
        // Bottleneck: 3 middle nodes * min(10, 3*2)=6 but outgoing capacity
        // to t is 5 per node -> total 15.
        assert_close(dinic(&mut net, s, t), 15.0);
    }
}
