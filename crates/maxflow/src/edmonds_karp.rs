//! Edmonds–Karp maximum flow (BFS augmenting paths).
//!
//! Used as an independent cross-check of [`crate::dinic()`] in tests and as the
//! baseline the paper's complexity discussion refers to (Section 4.2.1 cites
//! Edmonds–Karp for the quadratic bound on the time-expanded network).

use crate::network::FlowNetwork;

const EPS: f64 = 1e-9;

/// Computes the maximum flow from `source` to `sink` by repeatedly
/// augmenting along shortest (fewest-arc) paths.
///
/// The network is mutated in place; call [`FlowNetwork::reset`] to reuse it.
pub fn edmonds_karp(net: &mut FlowNetwork, source: usize, sink: usize) -> f64 {
    assert!(source < net.node_count(), "source out of range");
    assert!(sink < net.node_count(), "sink out of range");
    if source == sink {
        return 0.0;
    }
    let n = net.node_count();
    let mut total = 0.0;
    loop {
        // BFS recording the arc used to reach every node.
        let mut pred: Vec<Option<usize>> = vec![None; n];
        let mut visited = vec![false; n];
        visited[source] = true;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(source);
        'bfs: while let Some(v) = queue.pop_front() {
            for &a in net.adjacency(v) {
                let to = net.arc_to(a);
                if !visited[to] && net.arc_cap(a) > EPS {
                    visited[to] = true;
                    pred[to] = Some(a);
                    if to == sink {
                        break 'bfs;
                    }
                    queue.push_back(to);
                }
            }
        }
        if !visited[sink] {
            break;
        }
        // Bottleneck along the path.
        let mut bottleneck = f64::INFINITY;
        let mut v = sink;
        while v != source {
            let a = pred[v].expect("path reconstruction");
            bottleneck = bottleneck.min(net.arc_cap(a));
            v = net.arc_to(a ^ 1);
        }
        // Apply.
        let mut v = sink;
        while v != source {
            let a = pred[v].expect("path reconstruction");
            net.push(a, bottleneck);
            v = net.arc_to(a ^ 1);
        }
        total += bottleneck;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dinic::dinic;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "expected {b}, got {a}");
    }

    #[test]
    fn matches_known_values() {
        let mut net = FlowNetwork::with_nodes(6);
        let (s, v1, v2, v3, v4, t) = (0, 1, 2, 3, 4, 5);
        net.add_arc(s, v1, 16.0);
        net.add_arc(s, v2, 13.0);
        net.add_arc(v1, v3, 12.0);
        net.add_arc(v2, v1, 4.0);
        net.add_arc(v2, v4, 14.0);
        net.add_arc(v3, v2, 9.0);
        net.add_arc(v3, t, 20.0);
        net.add_arc(v4, v3, 7.0);
        net.add_arc(v4, t, 4.0);
        assert_close(edmonds_karp(&mut net, s, t), 23.0);
    }

    #[test]
    fn zero_when_disconnected() {
        let mut net = FlowNetwork::with_nodes(3);
        net.add_arc(0, 1, 3.0);
        assert_close(edmonds_karp(&mut net, 0, 2), 0.0);
    }

    #[test]
    fn source_equals_sink_is_zero() {
        let mut net = FlowNetwork::with_nodes(1);
        assert_close(edmonds_karp(&mut net, 0, 0), 0.0);
    }

    #[test]
    fn agrees_with_dinic_on_random_networks() {
        // Deterministic pseudo-random layered networks.
        let mut state = 7u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        for trial in 0..20 {
            let n = 6 + (trial % 5);
            let mut a = FlowNetwork::with_nodes(n);
            let mut b = FlowNetwork::with_nodes(n);
            for u in 0..n {
                for v in 0..n {
                    if u != v && next() < 0.4 {
                        let cap = (next() * 10.0 * 100.0).round() / 100.0;
                        a.add_arc(u, v, cap);
                        b.add_arc(u, v, cap);
                    }
                }
            }
            let f1 = edmonds_karp(&mut a, 0, n - 1);
            let f2 = dinic(&mut b, 0, n - 1);
            assert!(
                (f1 - f2).abs() < 1e-6,
                "trial {trial}: EK {f1} vs Dinic {f2}"
            );
        }
    }
}
