//! # tin-maxflow
//!
//! Static maximum-flow algorithms and the *time-expanded* reduction of a
//! temporal interaction network.
//!
//! Section 4.2.1 of the paper observes that its maximum-flow problem is
//! equivalent to the temporal max-flow problem of Akrida et al., which in
//! turn reduces to a classic max-flow computation on a static network with
//! one vertex copy per (vertex, activity time) pair. This crate provides:
//!
//! * [`FlowNetwork`] — a residual-arc representation of a static capacitated
//!   network;
//! * [`mod@dinic`] and [`mod@edmonds_karp`] — two textbook max-flow algorithms
//!   (Dinic is used as the fast exact oracle, Edmonds–Karp as an independent
//!   cross-check);
//! * [`time_expanded`] — the reduction from a temporal interaction DAG to a
//!   static network, honouring the paper's *strict* precedence rule (an
//!   interaction leaving `v` at time `t` may only use quantity that arrived
//!   at `v` strictly before `t`).
//!
//! The LP solver of `tin-flow` and the Dinic solver built on this reduction
//! compute the same optimum; the property tests of the workspace verify this
//! equivalence on randomized networks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dinic;
pub mod edmonds_karp;
pub mod network;
pub mod time_expanded;

pub use dinic::dinic;
pub use edmonds_karp::edmonds_karp;
pub use network::{ArcId, FlowNetwork};
pub use time_expanded::{time_expanded_max_flow, TimeExpandedNetwork};
