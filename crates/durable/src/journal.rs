//! The write-ahead delta journal: append-only segment files of CRC-framed
//! [`GraphDelta`]s (see [`crate::frame`]), with an fsync-on-batch policy,
//! size-based rotation, and multi-segment replay.
//!
//! Segment files are named `journal-<seq>.wal` with zero-padded, strictly
//! increasing sequence numbers; a hole in the sequence means someone deleted
//! a segment and replay refuses to jump it. Opening a journal for append
//! truncates a torn tail (the leftovers of a kill mid-write) off the newest
//! segment — the frames before it are untouched, exactly the recoverable
//! prefix [`crate::frame::scan_segment`] reports.

use crate::error::DurabilityError;
use crate::frame::{self, SEGMENT_MAGIC};
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use tin_graph::GraphDelta;

/// Journal tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalConfig {
    /// Rotate to a fresh segment once the current one reaches this many
    /// bytes (checked before each append, so segments overshoot by at most
    /// one frame).
    pub segment_max_bytes: u64,
    /// fsync after every `sync_every` appended frames — the "batch" of the
    /// fsync-on-batch policy. `1` makes every append durable before it
    /// returns; `0` disables automatic syncs ([`Journal::sync`] only);
    /// larger values are group commit ([`JournalConfig::group_commit`]).
    pub sync_every: u32,
    /// Garbage-collect journal segments on snapshot commit: once a manifest
    /// is durably committed, every segment *older* than the one its journal
    /// position points into can never be read by a recovery through that
    /// manifest, and [`crate::DurableStore::snapshot`] deletes them
    /// ([`compact_before`]). Disable to keep the full journal history — at
    /// the cost of unbounded growth — e.g. to preserve the from-scratch
    /// full-replay path after manifests are lost, or to keep *older*
    /// snapshots recoverable (compaction only guarantees the newest one).
    pub compact_on_snapshot: bool,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig {
            segment_max_bytes: 8 * 1024 * 1024,
            sync_every: 1,
            compact_on_snapshot: true,
        }
    }
}

impl JournalConfig {
    /// Group commit: coalesce up to `n` appends per fsync. The write-path
    /// trade is classic — one fsync amortized over `n` frames instead of
    /// one each — and the crash contract weakens exactly this far: a kill
    /// loses *at most the last uncommitted group* (the appends since the
    /// previous group boundary), never a committed one. A clean shutdown
    /// loses nothing: dropping the [`Journal`] flushes the open group.
    /// [`Journal::durable_position`] reports how far the fsynced prefix
    /// reaches at any moment.
    pub fn group_commit(n: u32) -> Self {
        JournalConfig {
            sync_every: n,
            ..JournalConfig::default()
        }
    }
}

/// A durable position in the journal: a segment and a byte offset within
/// it. Positions returned by [`Journal::append`] point *after* the appended
/// frame — the position a replay reaches by consuming it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct JournalPos {
    /// Segment sequence number.
    pub segment: u64,
    /// Byte offset within the segment file.
    pub offset: u64,
}

impl JournalPos {
    /// The very start of a journal (before any segment's first frame).
    pub fn start() -> Self {
        JournalPos {
            segment: 0,
            offset: 0,
        }
    }
}

/// The append half of the journal. Reading back goes through
/// [`replay_from`], which operates on the directory alone — a reader needs
/// no live `Journal`.
#[derive(Debug)]
pub struct Journal {
    dir: PathBuf,
    config: JournalConfig,
    seg_seq: u64,
    file: File,
    offset: u64,
    unsynced: u32,
    durable: JournalPos,
}

/// Path of segment `seq` under `dir`.
pub fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("journal-{seq:06}.wal"))
}

/// Lists the segment files under `dir`, sorted by sequence number.
pub fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, DurabilityError> {
    let mut found = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(found),
        Err(e) => return Err(DurabilityError::from_io(dir, e)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| DurabilityError::from_io(dir, e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(seq) = name
            .strip_prefix("journal-")
            .and_then(|s| s.strip_suffix(".wal"))
            .and_then(|s| s.parse::<u64>().ok())
        else {
            continue;
        };
        found.push((seq, entry.path()));
    }
    found.sort_unstable();
    Ok(found)
}

impl Journal {
    /// Opens (or creates) the journal under `dir` for appending.
    ///
    /// If the newest segment ends in a torn frame — the leftovers of a kill
    /// mid-write — the file is truncated back to its last whole valid frame
    /// before appends resume, so the torn bytes can never shadow a later
    /// frame. Corruption *before* the tail is a hard error: appending after
    /// it would strand the corrupt region between valid frames forever.
    pub fn open(dir: &Path, config: JournalConfig) -> Result<Self, DurabilityError> {
        fs::create_dir_all(dir).map_err(|e| DurabilityError::from_io(dir, e))?;
        let segments = list_segments(dir)?;
        let (seg_seq, path, offset) = match segments.last() {
            None => {
                let path = segment_path(dir, 0);
                let mut file =
                    File::create(&path).map_err(|e| DurabilityError::from_io(&path, e))?;
                file.write_all(SEGMENT_MAGIC)
                    .and_then(|()| file.sync_all())
                    .map_err(|e| DurabilityError::from_io(&path, e))?;
                sync_dir(dir)?;
                (0, path, SEGMENT_MAGIC.len() as u64)
            }
            Some(&(seq, ref path)) => {
                let bytes = fs::read(path).map_err(|e| DurabilityError::from_io(path, e))?;
                let name = file_name(path);
                let scan = frame::scan_segment(&bytes, 0, true, &name)?;
                if scan.valid_bytes < bytes.len() as u64 {
                    let f = OpenOptions::new()
                        .write(true)
                        .open(path)
                        .map_err(|e| DurabilityError::from_io(path, e))?;
                    f.set_len(scan.valid_bytes)
                        .and_then(|()| f.sync_all())
                        .map_err(|e| DurabilityError::from_io(path, e))?;
                }
                // A segment cut inside its magic recovers to 0 bytes; give
                // it its magic back so it is a valid empty segment.
                let offset = if scan.valid_bytes == 0 {
                    let mut f = OpenOptions::new()
                        .write(true)
                        .open(path)
                        .map_err(|e| DurabilityError::from_io(path, e))?;
                    f.write_all(SEGMENT_MAGIC)
                        .and_then(|()| f.sync_all())
                        .map_err(|e| DurabilityError::from_io(path, e))?;
                    SEGMENT_MAGIC.len() as u64
                } else {
                    scan.valid_bytes
                };
                (seq, path.clone(), offset)
            }
        };
        let file = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| DurabilityError::from_io(&path, e))?;
        Ok(Journal {
            dir: dir.to_path_buf(),
            config,
            seg_seq,
            file,
            offset,
            unsynced: 0,
            durable: JournalPos {
                segment: seg_seq,
                offset,
            },
        })
    }

    /// Appends one delta as a frame, returning the durable position *after*
    /// it. Rotates to a fresh segment first when the current one is full;
    /// fsyncs according to [`JournalConfig::sync_every`].
    pub fn append(&mut self, delta: &GraphDelta) -> Result<JournalPos, DurabilityError> {
        if self.offset >= self.config.segment_max_bytes && self.offset > SEGMENT_MAGIC.len() as u64
        {
            self.rotate()?;
        }
        let payload = frame::encode_delta(delta)?;
        let written = frame::write_frame(&mut self.file, &payload)
            .map_err(|e| DurabilityError::from_io(&segment_path(&self.dir, self.seg_seq), e))?;
        self.offset += written;
        self.unsynced += 1;
        if self.config.sync_every > 0 && self.unsynced >= self.config.sync_every {
            self.sync()?;
        }
        Ok(self.position())
    }

    /// Forces everything appended so far to stable storage, closing the
    /// open commit group.
    pub fn sync(&mut self) -> Result<(), DurabilityError> {
        self.file
            .sync_data()
            .map_err(|e| DurabilityError::from_io(&segment_path(&self.dir, self.seg_seq), e))?;
        self.unsynced = 0;
        self.durable = self.position();
        Ok(())
    }

    /// Closes the current segment (fsynced) and starts the next one.
    pub fn rotate(&mut self) -> Result<(), DurabilityError> {
        self.sync()?;
        let seq = self.seg_seq + 1;
        let path = segment_path(&self.dir, seq);
        let mut file = File::create(&path).map_err(|e| DurabilityError::from_io(&path, e))?;
        file.write_all(SEGMENT_MAGIC)
            .and_then(|()| file.sync_all())
            .map_err(|e| DurabilityError::from_io(&path, e))?;
        sync_dir(&self.dir)?;
        self.seg_seq = seq;
        self.file = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| DurabilityError::from_io(&path, e))?;
        self.offset = SEGMENT_MAGIC.len() as u64;
        self.durable = self.position();
        Ok(())
    }

    /// The current end position (after the last appended frame). With
    /// group commit ([`JournalConfig::sync_every`] > 1) the tail past
    /// [`durable_position`](Self::durable_position) is appended but not
    /// yet fsynced.
    pub fn position(&self) -> JournalPos {
        JournalPos {
            segment: self.seg_seq,
            offset: self.offset,
        }
    }

    /// How far the fsynced prefix reaches: the position as of the last
    /// completed sync (group boundary, explicit [`sync`](Self::sync),
    /// rotation, or open). A kill can only lose frames *after* this
    /// position — the open commit group.
    pub fn durable_position(&self) -> JournalPos {
        self.durable
    }

    /// The configuration the journal was opened with.
    pub fn config(&self) -> &JournalConfig {
        &self.config
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl Drop for Journal {
    /// Clean shutdown loses nothing: a drop flushes the open commit group
    /// so group commit only ever risks the tail on a *kill*. Best-effort —
    /// a drop cannot surface errors; call [`Journal::sync`] first when the
    /// flush must be checked.
    fn drop(&mut self) {
        if self.unsynced > 0 {
            let _ = self.file.sync_data();
        }
    }
}

/// The result of replaying the journal from a position.
#[derive(Debug)]
pub struct JournalReplay {
    /// Decoded deltas in order, each with the durable position after its
    /// frame.
    pub deltas: Vec<(GraphDelta, JournalPos)>,
    /// The position after the last whole valid frame.
    pub end: JournalPos,
    /// A torn tail on the *newest* segment, if one was found (tolerated:
    /// the frames before it are all in `deltas`).
    pub torn: Option<(u64, frame::TornTail)>,
}

/// Replays every frame from `from` (a position previously returned by
/// [`Journal::append`], a snapshot manifest, or [`JournalPos::start`]) to
/// the journal's end.
///
/// Only the newest segment may end mid-frame (a torn tail, tolerated and
/// reported); an incomplete or checksum-failing frame anywhere else is
/// mid-journal corruption and fails with a typed, positional
/// [`DurabilityError::CorruptFrame`].
pub fn replay_from(dir: &Path, from: JournalPos) -> Result<JournalReplay, DurabilityError> {
    let segments = list_segments(dir)?;
    let relevant: Vec<&(u64, PathBuf)> = segments
        .iter()
        .filter(|(seq, _)| *seq >= from.segment)
        .collect();
    if let Some((first, _)) = relevant.first() {
        if *first > from.segment {
            return Err(DurabilityError::MissingSegment {
                segment: from.segment,
            });
        }
    }
    let mut deltas = Vec::new();
    let mut end = from;
    let mut torn = None;
    for (i, (seq, path)) in relevant.iter().enumerate() {
        if i > 0 && *seq != relevant[i - 1].0 + 1 {
            return Err(DurabilityError::MissingSegment {
                segment: relevant[i - 1].0 + 1,
            });
        }
        let bytes = fs::read(path).map_err(|e| DurabilityError::from_io(path, e))?;
        let is_last = i + 1 == relevant.len();
        let start = if *seq == from.segment { from.offset } else { 0 };
        let scan = frame::scan_segment(&bytes, start, is_last, &file_name(path))?;
        for (delta, off) in scan.deltas {
            deltas.push((
                delta,
                JournalPos {
                    segment: *seq,
                    offset: off,
                },
            ));
        }
        if scan.frames > 0 || is_last {
            end = JournalPos {
                segment: *seq,
                offset: scan.valid_bytes,
            };
        }
        if let Some(t) = scan.torn {
            torn = Some((*seq, t));
        }
    }
    Ok(JournalReplay { deltas, end, torn })
}

/// Deletes every journal segment strictly older than `pos.segment`,
/// returning how many were removed. Safe whenever `pos` is covered by a
/// durably committed snapshot manifest: a replay from `pos` (or later) never
/// opens those segments, and [`replay_from`]'s contiguity check only spans
/// `pos.segment` onward. Replays from *earlier* positions — the full-replay
/// ladder rung, or an older manifest — fail with
/// [`DurabilityError::MissingSegment`] afterwards, which is the trade
/// [`JournalConfig::compact_on_snapshot`] opts into.
///
/// The directory is fsynced after the removals so the reclaimed space (and
/// the absence of the files) is itself durable. Removal of an
/// already-missing segment is not an error — compaction is idempotent.
pub fn compact_before(dir: &Path, pos: JournalPos) -> Result<usize, DurabilityError> {
    let mut removed = 0;
    for (seq, path) in list_segments(dir)? {
        if seq >= pos.segment {
            break;
        }
        match fs::remove_file(&path) {
            Ok(()) => removed += 1,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(DurabilityError::from_io(&path, e)),
        }
    }
    if removed > 0 {
        sync_dir(dir)?;
    }
    Ok(removed)
}

/// Best-effort directory fsync so renames and creations are themselves
/// durable (a no-op on platforms where directories cannot be opened).
pub(crate) fn sync_dir(dir: &Path) -> Result<(), DurabilityError> {
    match File::open(dir) {
        Ok(f) => f.sync_all().map_err(|e| DurabilityError::from_io(dir, e)),
        Err(_) => Ok(()),
    }
}

fn file_name(path: &Path) -> String {
    path.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tin_graph::{Interaction, Node, NodeId};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tin-journal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn delta(i: u32) -> GraphDelta {
        GraphDelta::new(
            i as usize,
            vec![Node {
                name: format!("v{i}"),
            }],
            if i == 0 {
                vec![]
            } else {
                vec![(NodeId(i - 1), NodeId(i), Interaction::new(i as i64, 1.0))]
            },
        )
        .unwrap()
    }

    #[test]
    fn append_and_replay_roundtrip() {
        let dir = temp_dir("roundtrip");
        let mut j = Journal::open(&dir, JournalConfig::default()).unwrap();
        let mut positions = Vec::new();
        for i in 0..5 {
            positions.push(j.append(&delta(i)).unwrap());
        }
        assert!(positions.windows(2).all(|w| w[0] < w[1]));
        let replay = replay_from(&dir, JournalPos::start()).unwrap();
        assert_eq!(replay.deltas.len(), 5);
        assert!(replay.torn.is_none());
        assert_eq!(replay.end, positions[4]);
        for (i, (d, pos)) in replay.deltas.iter().enumerate() {
            assert_eq!(d, &delta(i as u32));
            assert_eq!(pos, &positions[i]);
        }
        // Replaying from a mid-journal position yields exactly the tail.
        let tail = replay_from(&dir, positions[2]).unwrap();
        assert_eq!(tail.deltas.len(), 2);
        assert_eq!(tail.deltas[0].0, delta(3));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_splits_segments_and_replay_crosses_them() {
        let dir = temp_dir("rotate");
        let config = JournalConfig {
            segment_max_bytes: 64, // tiny: nearly every append rotates
            sync_every: 1,
            ..JournalConfig::default()
        };
        let mut j = Journal::open(&dir, config).unwrap();
        for i in 0..6 {
            j.append(&delta(i)).unwrap();
        }
        let last = j.position();
        assert!(last.segment >= 2, "expected rotation, got {last:?}");
        let segments = list_segments(&dir).unwrap();
        assert_eq!(segments.len() as u64, last.segment + 1);
        let replay = replay_from(&dir, JournalPos::start()).unwrap();
        assert_eq!(replay.deltas.len(), 6);
        assert_eq!(replay.end, last);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_truncates_torn_tail_and_appends_cleanly() {
        let dir = temp_dir("torn");
        let mut j = Journal::open(&dir, JournalConfig::default()).unwrap();
        for i in 0..3 {
            j.append(&delta(i)).unwrap();
        }
        let durable = j.position();
        drop(j);
        // Simulate a kill mid-write: append garbage that looks like a
        // started-but-unfinished frame.
        let path = segment_path(&dir, 0);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0x55; 5]).unwrap();
        drop(f);
        let replay = replay_from(&dir, JournalPos::start()).unwrap();
        assert_eq!(replay.deltas.len(), 3);
        assert!(replay.torn.is_some());
        assert_eq!(replay.end, durable);
        // Reopening truncates the tail; the next append lands exactly after
        // the durable prefix and the torn bytes are gone for good.
        let mut j = Journal::open(&dir, JournalConfig::default()).unwrap();
        assert_eq!(j.position(), durable);
        j.append(&delta(3)).unwrap();
        let replay = replay_from(&dir, JournalPos::start()).unwrap();
        assert_eq!(replay.deltas.len(), 4);
        assert!(replay.torn.is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_in_non_final_segment_fails_with_position() {
        let dir = temp_dir("midcorrupt");
        let config = JournalConfig {
            segment_max_bytes: 64,
            sync_every: 1,
            ..JournalConfig::default()
        };
        let mut j = Journal::open(&dir, config).unwrap();
        for i in 0..6 {
            j.append(&delta(i)).unwrap();
        }
        drop(j);
        // Truncate segment 1 (not the newest) mid-frame.
        let path = segment_path(&dir, 1);
        let len = fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);
        let err = replay_from(&dir, JournalPos::start()).unwrap_err();
        match err {
            DurabilityError::CorruptFrame { file, .. } => {
                assert!(file.contains("journal-000001"), "{file}");
            }
            other => panic!("expected CorruptFrame, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_advances_durable_position_on_group_boundaries() {
        let dir = temp_dir("group");
        let mut j = Journal::open(&dir, JournalConfig::group_commit(3)).unwrap();
        assert_eq!(j.durable_position(), j.position());
        let mut trace = Vec::new();
        for i in 0..7 {
            let pos = j.append(&delta(i)).unwrap();
            trace.push((pos, j.durable_position()));
        }
        // The fsync fires on appends 3 and 6 (the group boundaries); in
        // between, the durable prefix holds at the last boundary.
        assert_eq!(trace[2].1, trace[2].0);
        assert_eq!(trace[5].1, trace[5].0);
        let after_magic = JournalPos {
            segment: 0,
            offset: SEGMENT_MAGIC.len() as u64,
        };
        assert_eq!(trace[0].1, after_magic);
        assert_eq!(trace[1].1, after_magic);
        assert_eq!(trace[3].1, trace[2].0);
        assert_eq!(trace[4].1, trace[2].0);
        assert_eq!(trace[6].1, trace[5].0);
        assert!(j.durable_position() < j.position());
        // An explicit sync closes the open group.
        j.sync().unwrap();
        assert_eq!(j.durable_position(), j.position());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_segment_is_detected() {
        let dir = temp_dir("hole");
        let config = JournalConfig {
            segment_max_bytes: 64,
            sync_every: 1,
            ..JournalConfig::default()
        };
        let mut j = Journal::open(&dir, config).unwrap();
        for i in 0..6 {
            j.append(&delta(i)).unwrap();
        }
        drop(j);
        fs::remove_file(segment_path(&dir, 1)).unwrap();
        assert_eq!(
            replay_from(&dir, JournalPos::start()).unwrap_err(),
            DurabilityError::MissingSegment { segment: 1 }
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
