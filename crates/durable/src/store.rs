//! [`DurableStore`]: the façade that ties recovery, the journal, the graph,
//! and the path tables into one crash-safe unit.
//!
//! ## Write path and its ordering
//!
//! [`DurableStore::apply`] runs, in order:
//!
//! 1. `graph.apply(delta)` — validates the delta against live state and
//!    mutates the in-memory graph. A rejected delta never reaches the
//!    journal, so replay can treat a graph rejection as corruption.
//! 2. `journal.append(delta)` (+ fsync per [`crate::journal::JournalConfig::sync_every`]) —
//!    the delta becomes durable.
//! 3. `tables.apply(...)` — incremental table maintenance.
//!
//! Journaling *after* the graph apply is safe because step 1 only touches
//! memory: if the process dies between 1 and 2, the in-memory change is
//! lost along with the process, and recovery replays exactly the journaled
//! prefix. The invariant that matters is the converse — never journal a
//! delta the graph would refuse. A delta is **not durable until its frame
//! is fsynced**; with `sync_every: 1` (the default) that is every append,
//! with larger batches the tail since the last sync can be lost to a crash
//! (but never torn into a half-applied state: replay stops at the last
//! complete frame).

use crate::error::DurabilityError;
use crate::journal::{Journal, JournalConfig, JournalPos};
use crate::recovery::{Recovered, Recovery, RecoveryReport};
use crate::snapshot::{list_manifests, write_snapshot};
use std::io::Read;
use std::path::{Path, PathBuf};
use tin_datasets::DeltaStream;
use tin_graph::{GraphDelta, GraphError, TemporalGraph};
use tin_patterns::{PathTables, TablesConfig};

/// A temporal graph plus path tables whose every accepted delta is made
/// durable through a write-ahead journal, with snapshot/restore. See the
/// [module docs](self) for the write-path ordering argument.
#[derive(Debug)]
pub struct DurableStore {
    dir: PathBuf,
    journal: Journal,
    graph: TemporalGraph,
    tables: PathTables,
    /// Frames reflected in `graph`/`tables` since the directory was created
    /// (snapshot-covered + replayed + appended this run).
    frames: u64,
    /// Next snapshot sequence number.
    snapshot_seq: u64,
}

impl DurableStore {
    /// Opens (or creates) the durable directory: runs [`Recovery`], then
    /// opens the journal for appending — which truncates any torn tail the
    /// recovery tolerated, so the next append lands on a clean frame
    /// boundary. Returns the store and the [`RecoveryReport`] describing
    /// what was restored.
    pub fn open(
        dir: &Path,
        tables_config: TablesConfig,
        journal_config: JournalConfig,
    ) -> Result<(Self, RecoveryReport), DurabilityError> {
        let Recovered {
            graph,
            tables,
            report,
        } = Recovery::new(dir, tables_config).run()?;
        let journal = Journal::open(dir, journal_config)?;
        let snapshot_seq = list_manifests(dir)?
            .last()
            .map(|(seq, _)| seq + 1)
            .unwrap_or(0);
        let store = DurableStore {
            dir: dir.to_path_buf(),
            journal,
            graph,
            tables,
            frames: report.frames,
            snapshot_seq,
        };
        Ok((store, report))
    }

    /// Applies one delta durably: graph first (validation), then the
    /// journal frame, then incremental table maintenance. On a graph
    /// rejection nothing is journaled and the state is unchanged.
    pub fn apply(&mut self, delta: &GraphDelta) -> Result<(), DurabilityError> {
        let applied = self
            .graph
            .apply(delta)
            .map_err(|e| DurabilityError::Rejected { source: e })?;
        self.journal.append(delta)?;
        self.tables.apply(&self.graph, &applied);
        self.frames += 1;
        Ok(())
    }

    /// Tees a [`DeltaStream`] through the store: drains the stream in
    /// batches of `max_records`, applying (and journaling) each delta.
    /// Returns the number of deltas applied. On error, everything already
    /// applied remains applied and durable.
    pub fn ingest<R: Read>(
        &mut self,
        stream: &mut DeltaStream<R>,
        max_records: usize,
    ) -> Result<u64, DurabilityError> {
        let mut applied = 0u64;
        loop {
            let delta = stream
                .next_delta(max_records)
                .map_err(|e| DurabilityError::Rejected { source: e })?;
            let Some(delta) = delta else { break };
            self.apply(&delta)?;
            applied += 1;
        }
        Ok(applied)
    }

    /// Writes a snapshot of the current state tied to the current journal
    /// position, committing it atomically (see [`crate::snapshot`]).
    /// Syncs the journal first so the snapshot never claims a position
    /// ahead of durability.
    ///
    /// With [`JournalConfig::compact_on_snapshot`] set (the default), a
    /// successful commit then garbage-collects every journal segment older
    /// than the one the manifest's position points into
    /// ([`crate::journal::compact_before`]): recovery through this (or any
    /// newer) manifest never reads them, so the journal's footprint stays
    /// proportional to the deltas since the last snapshot instead of the
    /// whole history. The deletion happens strictly *after* the manifest
    /// rename is durable — a crash between the two leaves extra segments,
    /// never a hole a recovery could fall into.
    pub fn snapshot(&mut self) -> Result<PathBuf, DurabilityError> {
        self.journal.sync()?;
        let position = self.journal.position();
        let manifest = write_snapshot(
            &self.dir,
            self.snapshot_seq,
            &self.graph,
            &self.tables,
            position,
            self.frames,
        )?;
        self.snapshot_seq += 1;
        if self.journal.config().compact_on_snapshot {
            crate::journal::compact_before(&self.dir, position)?;
        }
        Ok(manifest)
    }

    /// Forces any buffered journal frames to disk (useful with
    /// `sync_every > 1`).
    pub fn sync(&mut self) -> Result<(), DurabilityError> {
        self.journal.sync()
    }

    /// The live graph.
    pub fn graph(&self) -> &TemporalGraph {
        &self.graph
    }

    /// The live path tables.
    pub fn tables(&self) -> &PathTables {
        &self.tables
    }

    /// The journal position after the last appended frame.
    pub fn position(&self) -> JournalPos {
        self.journal.position()
    }

    /// Total frames reflected in the live state.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// The durable directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// A [`GraphError`] wrapped for the store's apply path.
impl From<GraphError> for DurabilityError {
    fn from(e: GraphError) -> Self {
        DurabilityError::Rejected { source: e }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use tin_datasets::LoaderConfig;
    use tin_graph::{Interaction, Node, NodeId};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tin-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn delta(i: u32) -> GraphDelta {
        let nodes = vec![Node {
            name: format!("v{i}"),
        }];
        let interactions = if i == 0 {
            vec![]
        } else {
            vec![(NodeId(i - 1), NodeId(i), Interaction::new(i as i64, 2.0))]
        };
        GraphDelta::new(i as usize, nodes, interactions).unwrap()
    }

    #[test]
    fn open_apply_reopen_is_row_identical() {
        let dir = temp_dir("reopen");
        let config = TablesConfig::default();
        {
            let (mut store, report) =
                DurableStore::open(&dir, config, JournalConfig::default()).unwrap();
            assert_eq!(report.frames, 0);
            for i in 0..7 {
                store.apply(&delta(i)).unwrap();
            }
            assert_eq!(store.frames(), 7);
        }
        let (store, report) = DurableStore::open(&dir, config, JournalConfig::default()).unwrap();
        assert_eq!(report.replayed, 7);
        let mut g = TemporalGraph::new();
        let mut t = PathTables::build(&g, &config);
        for i in 0..7 {
            let applied = g.apply(&delta(i)).unwrap();
            t.apply(&g, &applied);
        }
        assert_eq!(*store.graph(), g);
        assert_eq!(t.first_row_divergence(store.tables()), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_shortens_replay_on_reopen() {
        let dir = temp_dir("snapshot");
        let config = TablesConfig::default();
        {
            let (mut store, _) =
                DurableStore::open(&dir, config, JournalConfig::default()).unwrap();
            for i in 0..10 {
                store.apply(&delta(i)).unwrap();
                if i == 7 {
                    store.snapshot().unwrap();
                }
            }
        }
        let (store, report) = DurableStore::open(&dir, config, JournalConfig::default()).unwrap();
        assert!(matches!(
            report.source,
            crate::recovery::RecoverySource::Snapshot { .. }
        ));
        assert_eq!(report.replayed, 2);
        assert_eq!(store.frames(), 10);
        // A second snapshot gets the next sequence number.
        let (mut store, _) = (store, ());
        store.snapshot().unwrap();
        assert_eq!(list_manifests(&dir).unwrap().len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_compacts_stale_segments_and_recovery_succeeds() {
        let dir = temp_dir("compact");
        let config = TablesConfig::default();
        // Tiny segments so ten deltas span several of them.
        let journal_config = JournalConfig {
            segment_max_bytes: 64,
            sync_every: 1,
            compact_on_snapshot: true,
        };
        let position;
        {
            let (mut store, _) = DurableStore::open(&dir, config, journal_config).unwrap();
            for i in 0..10 {
                store.apply(&delta(i)).unwrap();
            }
            position = store.position();
            assert!(position.segment > 0, "deltas must have rotated segments");
            store.snapshot().unwrap();
            let segments = crate::journal::list_segments(&dir).unwrap();
            assert_eq!(
                segments.first().map(|(seq, _)| *seq),
                Some(position.segment),
                "everything older than the manifest's segment is gone"
            );
            for i in 10..13 {
                store.apply(&delta(i)).unwrap();
            }
        }
        let (store, report) = DurableStore::open(&dir, config, journal_config).unwrap();
        assert!(matches!(
            report.source,
            crate::recovery::RecoverySource::Snapshot { .. }
        ));
        assert_eq!(store.frames(), 13);
        let mut g = TemporalGraph::new();
        let mut t = PathTables::build(&g, &config);
        for i in 0..13 {
            let applied = g.apply(&delta(i)).unwrap();
            t.apply(&g, &applied);
        }
        assert_eq!(*store.graph(), g);
        assert_eq!(t.first_row_divergence(store.tables()), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_opt_out_keeps_all_segments() {
        let dir = temp_dir("no-compact");
        let config = TablesConfig::default();
        let journal_config = JournalConfig {
            segment_max_bytes: 64,
            sync_every: 1,
            compact_on_snapshot: false,
        };
        let (mut store, _) = DurableStore::open(&dir, config, journal_config).unwrap();
        for i in 0..10 {
            store.apply(&delta(i)).unwrap();
        }
        assert!(store.position().segment > 0);
        store.snapshot().unwrap();
        let segments = crate::journal::list_segments(&dir).unwrap();
        assert_eq!(
            segments.first().map(|(seq, _)| *seq),
            Some(0),
            "opting out must leave the full history on disk"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejected_delta_is_not_journaled() {
        let dir = temp_dir("reject");
        let config = TablesConfig::default();
        let (mut store, _) = DurableStore::open(&dir, config, JournalConfig::default()).unwrap();
        store.apply(&delta(0)).unwrap();
        // Wrong base count: the graph refuses it.
        let bad = GraphDelta::new(5, vec![], vec![]).unwrap();
        assert!(matches!(
            store.apply(&bad),
            Err(DurabilityError::Rejected { .. })
        ));
        assert_eq!(store.frames(), 1);
        drop(store);
        let (store, report) = DurableStore::open(&dir, config, JournalConfig::default()).unwrap();
        assert_eq!(report.replayed, 1);
        assert_eq!(store.graph().node_count(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ingest_tees_a_delta_stream_durably() {
        let dir = temp_dir("ingest");
        let config = TablesConfig::default();
        let csv = "src,dst,time,quantity\na,b,1,5.0\nb,c,2,3.5\nc,a,3,2.0\n";
        {
            let (mut store, _) =
                DurableStore::open(&dir, config, JournalConfig::default()).unwrap();
            let mut stream = DeltaStream::new(csv.as_bytes(), &LoaderConfig::default()).unwrap();
            let n = store.ingest(&mut stream, 2).unwrap();
            assert_eq!(n, 2); // 3 records in batches of 2
            assert_eq!(store.graph().interaction_count(), 3);
        }
        let (store, report) = DurableStore::open(&dir, config, JournalConfig::default()).unwrap();
        assert_eq!(report.replayed, 2);
        assert_eq!(store.graph().interaction_count(), 3);
        assert_eq!(store.graph().node_count(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }
}
