//! CRC-32 (IEEE 802.3, the polynomial used by zip/gzip/Ethernet),
//! implemented here because the build is fully offline — no external crates.
//!
//! Reflected table-driven implementation: polynomial `0xEDB88320`, initial
//! value `0xFFFF_FFFF`, final XOR `0xFFFF_FFFF`. Verified against the
//! standard check value `crc32(b"123456789") == 0xCBF43926`.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Slicing-by-16 lookup tables, built at compile time. `TABLES[0]` is the
/// classic byte-at-a-time table; `TABLES[k]` advances a byte `k` positions
/// further through the register, letting `update` fold 16 input bytes per
/// iteration (snapshots checksum megabytes on the recovery path, where this
/// is a measurable share of restart latency).
const TABLES: [[u32; 256]; 16] = {
    let mut tables = [[0u32; 256]; 16];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 16 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
};

/// Incremental CRC-32 state, for checksumming data that arrives in pieces
/// (a frame header followed by its payload, a snapshot body written field by
/// field).
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh checksum.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        let mut chunks = bytes.chunks_exact(16);
        for c in &mut chunks {
            let a = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
            let b = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
            let d = u32::from_le_bytes([c[8], c[9], c[10], c[11]]);
            let e = u32::from_le_bytes([c[12], c[13], c[14], c[15]]);
            crc = TABLES[15][(a & 0xFF) as usize]
                ^ TABLES[14][((a >> 8) & 0xFF) as usize]
                ^ TABLES[13][((a >> 16) & 0xFF) as usize]
                ^ TABLES[12][(a >> 24) as usize]
                ^ TABLES[11][(b & 0xFF) as usize]
                ^ TABLES[10][((b >> 8) & 0xFF) as usize]
                ^ TABLES[9][((b >> 16) & 0xFF) as usize]
                ^ TABLES[8][(b >> 24) as usize]
                ^ TABLES[7][(d & 0xFF) as usize]
                ^ TABLES[6][((d >> 8) & 0xFF) as usize]
                ^ TABLES[5][((d >> 16) & 0xFF) as usize]
                ^ TABLES[4][(d >> 24) as usize]
                ^ TABLES[3][(e & 0xFF) as usize]
                ^ TABLES[2][((e >> 8) & 0xFF) as usize]
                ^ TABLES[1][((e >> 16) & 0xFF) as usize]
                ^ TABLES[0][(e >> 24) as usize];
        }
        for &b in chunks.remainder() {
            crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The final checksum value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_check_value() {
        // The canonical CRC-32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_and_incremental() {
        assert_eq!(crc32(b""), 0);
        let mut c = Crc32::new();
        c.update(b"1234");
        c.update(b"56789");
        assert_eq!(c.finish(), crc32(b"123456789"));
    }

    /// The slicing-by-16 fast path must agree with the reference
    /// byte-at-a-time recurrence at every length and split point.
    #[test]
    fn sliced_update_matches_bytewise_reference() {
        let data: Vec<u8> = (0..1024u32).map(|i| (i * 31 + 7) as u8).collect();
        let reference = |bytes: &[u8]| -> u32 {
            let mut crc = 0xFFFF_FFFFu32;
            for &b in bytes {
                crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
            }
            crc ^ 0xFFFF_FFFF
        };
        for len in (0..64).chain([255, 256, 257, 1000, 1024]) {
            assert_eq!(crc32(&data[..len]), reference(&data[..len]), "len {len}");
        }
        // Split at odd points so the remainder path runs mid-stream.
        let mut c = Crc32::new();
        c.update(&data[..13]);
        c.update(&data[13..200]);
        c.update(&data[200..]);
        assert_eq!(c.finish(), reference(&data));
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let data = b"hello, journal".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at byte {i} bit {bit}");
            }
        }
    }
}
