//! The durability subsystem's typed, positional error.

use std::fmt;
use tin_graph::GraphError;

/// Everything that can go wrong while journaling, snapshotting, or
/// recovering.
///
/// Corruption variants carry the file and byte position they were detected
/// at, so an operator (or the crash-matrix test) can pinpoint the damaged
/// region of a multi-GB journal instead of guessing.
#[derive(Debug, Clone, PartialEq)]
pub enum DurabilityError {
    /// An underlying filesystem operation failed.
    Io {
        /// Path the operation was against.
        path: String,
        /// Display form of the `std::io::Error`.
        message: String,
    },
    /// A complete journal frame failed its checksum or could not be decoded
    /// — mid-journal corruption, as opposed to a tolerated torn tail.
    CorruptFrame {
        /// Segment file the frame lives in.
        file: String,
        /// 0-based index of the frame within its segment.
        frame: u64,
        /// Byte offset of the frame's start within the segment file.
        offset: u64,
        /// What exactly failed (checksum mismatch, undecodable payload,
        /// truncation in a non-final segment, ...).
        reason: String,
    },
    /// A snapshot or its manifest is unreadable, fails its checksum, or
    /// decodes to an inconsistent graph/table state.
    CorruptSnapshot {
        /// The snapshot or manifest file.
        file: String,
        /// What exactly failed.
        reason: String,
    },
    /// The journal's segment sequence has a hole (a segment file was
    /// deleted out from under the log).
    MissingSegment {
        /// The absent segment number.
        segment: u64,
    },
    /// A delta cannot be represented in the journal's frame payload format
    /// (e.g. a vertex name containing a line break).
    Unencodable {
        /// What exactly is unrepresentable.
        reason: String,
    },
    /// A journaled delta decoded fine but was rejected by
    /// [`tin_graph::TemporalGraph::apply`] during recovery — the journal
    /// and the recovered base state disagree.
    Replay {
        /// Segment file the frame lives in.
        file: String,
        /// 0-based index of the frame within its segment.
        frame: u64,
        /// Byte offset of the frame's start within the segment file.
        offset: u64,
        /// The graph-level rejection.
        source: GraphError,
    },
    /// A snapshot was requested for state that cannot be snapshotted
    /// (e.g. an anchor-subset table set).
    Unsnapshottable {
        /// Why the state is not snapshot-safe.
        reason: String,
    },
    /// A delta was rejected by the live graph (or the delta stream failed)
    /// before anything reached the journal — the durable state is
    /// unchanged.
    Rejected {
        /// The graph-level rejection.
        source: GraphError,
    },
}

impl DurabilityError {
    /// Convenience constructor mapping an [`std::io::Error`] with the path
    /// it occurred on.
    pub fn from_io(path: &std::path::Path, e: std::io::Error) -> Self {
        DurabilityError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        }
    }
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityError::Io { path, message } => write!(f, "i/o error on {path}: {message}"),
            DurabilityError::CorruptFrame {
                file,
                frame,
                offset,
                reason,
            } => write!(
                f,
                "corrupt journal frame {frame} in {file} at byte offset {offset}: {reason}"
            ),
            DurabilityError::CorruptSnapshot { file, reason } => {
                write!(f, "corrupt snapshot {file}: {reason}")
            }
            DurabilityError::MissingSegment { segment } => {
                write!(f, "journal segment {segment} is missing")
            }
            DurabilityError::Unencodable { reason } => {
                write!(f, "delta cannot be journaled: {reason}")
            }
            DurabilityError::Replay {
                file,
                frame,
                offset,
                source,
            } => write!(
                f,
                "replay of frame {frame} in {file} at byte offset {offset} was rejected: {source}"
            ),
            DurabilityError::Unsnapshottable { reason } => {
                write!(f, "state cannot be snapshotted: {reason}")
            }
            DurabilityError::Rejected { source } => {
                write!(f, "delta rejected before journaling: {source}")
            }
        }
    }
}

impl std::error::Error for DurabilityError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_positional() {
        let e = DurabilityError::CorruptFrame {
            file: "journal-000002.wal".into(),
            frame: 17,
            offset: 4096,
            reason: "checksum mismatch".into(),
        };
        let s = e.to_string();
        assert!(s.contains("journal-000002.wal"));
        assert!(s.contains("frame 17"));
        assert!(s.contains("4096"));
        assert!(s.contains("checksum"));

        let r = DurabilityError::Replay {
            file: "journal-000000.wal".into(),
            frame: 3,
            offset: 99,
            source: GraphError::Invalid {
                message: "frontier regressed".into(),
            },
        };
        assert!(r.to_string().contains("frontier regressed"));
        assert!(DurabilityError::MissingSegment { segment: 5 }
            .to_string()
            .contains('5'));
    }
}
