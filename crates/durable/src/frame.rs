//! The journal frame codec.
//!
//! ## Frame format
//!
//! A segment file is an 8-byte magic (`TINJRNL1`) followed by frames:
//!
//! ```text
//! [payload length: u32 LE] [checksum: u32 LE] [payload bytes]
//! ```
//!
//! The checksum is CRC-32 (see [`crate::crc`]) over the 4 length bytes
//! followed by the payload, so a flipped bit in either the length field or
//! the payload fails verification.
//!
//! ## Payload format
//!
//! The payload is a [`GraphDelta`] in the hardened text codec's field
//! grammar (PR 4): a header line, one line per new vertex name (the whole
//! line is the name, so embedded spaces survive; names containing line
//! breaks are rejected at write time), and one line per interaction record
//! using the same `time` / `quantity` field rules as the interchange format
//! — including the canonical `inf` token for the infinite quantity.
//!
//! ```text
//! delta <base_nodes> <new_node_count> <record_count> <expiry|->
//! <name>                                  (new_node_count lines)
//! <src> <dst> <time> <quantity>           (record_count lines)
//! ```
//!
//! ## Torn tail vs corruption
//!
//! [`scan_segment`] distinguishes the two failure classes recovery must
//! treat differently:
//!
//! * an **incomplete** frame at the end of the byte stream (header or
//!   payload cut short — what a kill mid-write leaves behind) is a *torn
//!   tail*: with `tolerate_torn_tail` the scan stops cleanly at the last
//!   whole valid frame and reports the exact recoverable byte prefix;
//! * a **complete** frame whose checksum fails, or whose payload does not
//!   decode, is *corruption* and is always a typed, positional
//!   [`DurabilityError::CorruptFrame`] — silent data damage never recovers
//!   as if it were a clean tail.
//!
//! One inherent ambiguity: a corrupted *length* field that claims more
//! bytes than the stream holds is indistinguishable from a torn write, so
//! it is conservatively treated as a torn tail (the WAL convention — the
//! checksum cannot be consulted before the payload is complete).

use crate::crc::{crc32, Crc32};
use crate::error::DurabilityError;
use std::io::{self, Write};
use tin_graph::io::{parse_quantity, parse_time};
use tin_graph::{GraphDelta, Interaction, Node, NodeId, INFINITE_QUANTITY_TOKEN};

/// Magic bytes opening every journal segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"TINJRNL1";

/// Bytes of a frame header (length + checksum).
pub const FRAME_HEADER_BYTES: u64 = 8;

/// Serializes a delta into a frame payload. Fails (typed, no panic) when a
/// vertex name cannot survive the line-oriented format.
pub fn encode_delta(delta: &GraphDelta) -> Result<Vec<u8>, DurabilityError> {
    let mut out = String::new();
    let expiry = match delta.expiry() {
        Some(t) => t.to_string(),
        None => "-".to_string(),
    };
    out.push_str(&format!(
        "delta {} {} {} {expiry}\n",
        delta.base_nodes(),
        delta.new_nodes().len(),
        delta.interactions().len()
    ));
    for node in delta.new_nodes() {
        if node.name.contains(['\n', '\r']) {
            return Err(DurabilityError::Unencodable {
                reason: format!(
                    "vertex name {:?} contains a line break and cannot be framed",
                    node.name
                ),
            });
        }
        out.push_str(&node.name);
        out.push('\n');
    }
    for &(src, dst, i) in delta.interactions() {
        if i.quantity.is_infinite() {
            out.push_str(&format!(
                "{} {} {} {INFINITE_QUANTITY_TOKEN}\n",
                src.0, dst.0, i.time
            ));
        } else {
            out.push_str(&format!("{} {} {} {}\n", src.0, dst.0, i.time, i.quantity));
        }
    }
    Ok(out.into_bytes())
}

/// Deserializes a frame payload back into a validated delta. The error is a
/// human-readable reason; [`scan_segment`] wraps it with file/offset
/// position.
pub fn decode_delta(payload: &[u8]) -> Result<GraphDelta, String> {
    let text = std::str::from_utf8(payload).map_err(|e| format!("payload is not UTF-8: {e}"))?;
    let mut lines = text.split('\n');
    let header = lines.next().ok_or("empty payload")?;
    let fields: Vec<&str> = header.split(' ').collect();
    let [tag, base, nodes, recs, expiry] = fields.as_slice() else {
        return Err(format!("malformed header line `{header}`"));
    };
    if *tag != "delta" {
        return Err(format!("unknown payload tag `{tag}`"));
    }
    let base: usize = base
        .parse()
        .map_err(|_| format!("bad base node count `{base}`"))?;
    let nodes: usize = nodes
        .parse()
        .map_err(|_| format!("bad new node count `{nodes}`"))?;
    let recs: usize = recs
        .parse()
        .map_err(|_| format!("bad record count `{recs}`"))?;
    let expiry: Option<i64> = match *expiry {
        "-" => None,
        t => Some(parse_time(t).map_err(|e| format!("bad expiry: {e}"))?),
    };
    let mut new_nodes = Vec::with_capacity(nodes);
    for i in 0..nodes {
        let name = lines.next().ok_or(format!("missing node line {i}"))?;
        new_nodes.push(Node { name: name.into() });
    }
    let mut interactions = Vec::with_capacity(recs);
    for i in 0..recs {
        let line = lines.next().ok_or(format!("missing record line {i}"))?;
        let fields: Vec<&str> = line.split(' ').collect();
        let [src, dst, time, quantity] = fields.as_slice() else {
            return Err(format!(
                "record {i} has {} fields, expected 4",
                fields.len()
            ));
        };
        let src: u32 = src
            .parse()
            .map_err(|_| format!("record {i}: bad source id `{src}`"))?;
        let dst: u32 = dst
            .parse()
            .map_err(|_| format!("record {i}: bad destination id `{dst}`"))?;
        let time = parse_time(time).map_err(|e| format!("record {i}: {e}"))?;
        let quantity = parse_quantity(quantity).map_err(|e| format!("record {i}: {e}"))?;
        interactions.push((NodeId(src), NodeId(dst), Interaction::new(time, quantity)));
    }
    // The final newline leaves one empty trailing element; anything else is
    // junk after the declared records.
    if lines.any(|l| !l.is_empty()) {
        return Err("trailing data after the declared records".into());
    }
    let delta = GraphDelta::new(base, new_nodes, interactions)
        .map_err(|e| format!("decoded delta is invalid: {e}"))?;
    Ok(match expiry {
        Some(t) => delta.expire_before(t),
        None => delta,
    })
}

/// Writes one frame (header + payload) for `payload`, returning the bytes
/// written. The write is a single `write_all`, so a fault-injected writer
/// sees the frame as one contiguous span of the stream.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<u64> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame payload exceeds u32"))?;
    let len_bytes = len.to_le_bytes();
    let mut crc = Crc32::new();
    crc.update(&len_bytes);
    crc.update(payload);
    let mut frame = Vec::with_capacity(FRAME_HEADER_BYTES as usize + payload.len());
    frame.extend_from_slice(&len_bytes);
    frame.extend_from_slice(&crc.finish().to_le_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    Ok(frame.len() as u64)
}

/// A torn (incomplete) frame at the end of a segment — the signature a kill
/// mid-write leaves behind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset where the torn frame starts — everything before it is
    /// intact and was recovered.
    pub offset: u64,
    /// What exactly was cut short.
    pub reason: String,
}

/// The result of scanning one segment's bytes.
#[derive(Debug)]
pub struct SegmentScan {
    /// Decoded deltas with the byte offset *after* each one's frame — the
    /// durable position a consumer reaches by applying it.
    pub deltas: Vec<(GraphDelta, u64)>,
    /// The exact recoverable prefix: magic plus every whole valid frame.
    pub valid_bytes: u64,
    /// Frames decoded (equals `deltas.len()`, kept as `u64` for positions).
    pub frames: u64,
    /// Present when the segment ends mid-frame (only possible when
    /// `tolerate_torn_tail` was set; otherwise the scan errors instead).
    pub torn: Option<TornTail>,
}

/// Scans a segment's bytes from `start` (0 means "verify the magic first";
/// positions recorded by the journal are always past the magic), decoding
/// every frame. `file` labels errors. See the [module docs](self) for the
/// torn-tail / corruption split `tolerate_torn_tail` controls.
pub fn scan_segment(
    bytes: &[u8],
    start: u64,
    tolerate_torn_tail: bool,
    file: &str,
) -> Result<SegmentScan, DurabilityError> {
    let mut offset;
    if start < SEGMENT_MAGIC.len() as u64 {
        let have = bytes.len().min(SEGMENT_MAGIC.len());
        if bytes[..have] != SEGMENT_MAGIC[..have] {
            return Err(DurabilityError::CorruptFrame {
                file: file.into(),
                frame: 0,
                offset: 0,
                reason: "bad segment magic".into(),
            });
        }
        if have < SEGMENT_MAGIC.len() {
            // The file ends inside the magic: a kill during segment
            // creation. Nothing is recoverable from this segment.
            if tolerate_torn_tail {
                return Ok(SegmentScan {
                    deltas: Vec::new(),
                    valid_bytes: 0,
                    frames: 0,
                    torn: Some(TornTail {
                        offset: 0,
                        reason: "segment magic is cut short".into(),
                    }),
                });
            }
            return Err(DurabilityError::CorruptFrame {
                file: file.into(),
                frame: 0,
                offset: 0,
                reason: "segment magic is cut short".into(),
            });
        }
        offset = SEGMENT_MAGIC.len() as u64;
    } else {
        offset = start;
    }

    let mut deltas = Vec::new();
    let mut frames = 0u64;
    loop {
        let remaining = bytes.len() as u64 - offset;
        if remaining == 0 {
            return Ok(SegmentScan {
                deltas,
                valid_bytes: offset,
                frames,
                torn: None,
            });
        }
        // An incomplete frame: header or payload cut short.
        let torn_reason = if remaining < FRAME_HEADER_BYTES {
            Some(format!(
                "frame header cut short ({remaining} of {FRAME_HEADER_BYTES} bytes)"
            ))
        } else {
            let o = offset as usize;
            let len = u32::from_le_bytes(bytes[o..o + 4].try_into().expect("4-byte slice")) as u64;
            if remaining < FRAME_HEADER_BYTES + len {
                Some(format!(
                    "frame payload cut short ({} of {len} bytes)",
                    remaining - FRAME_HEADER_BYTES
                ))
            } else {
                None
            }
        };
        if let Some(reason) = torn_reason {
            if tolerate_torn_tail {
                return Ok(SegmentScan {
                    deltas,
                    valid_bytes: offset,
                    frames,
                    torn: Some(TornTail { offset, reason }),
                });
            }
            return Err(DurabilityError::CorruptFrame {
                file: file.into(),
                frame: frames,
                offset,
                reason,
            });
        }
        let o = offset as usize;
        let len_bytes: [u8; 4] = bytes[o..o + 4].try_into().expect("4-byte slice");
        let len = u32::from_le_bytes(len_bytes) as u64;
        let stored_crc = u32::from_le_bytes(bytes[o + 4..o + 8].try_into().expect("4-byte slice"));
        let payload = &bytes[o + 8..o + 8 + len as usize];
        let mut crc = Crc32::new();
        crc.update(&len_bytes);
        crc.update(payload);
        let actual = crc.finish();
        if actual != stored_crc {
            // A *complete* frame failing its checksum is corruption, never a
            // tolerated tail.
            return Err(DurabilityError::CorruptFrame {
                file: file.into(),
                frame: frames,
                offset,
                reason: format!(
                    "checksum mismatch (stored {stored_crc:#010x}, computed {actual:#010x})"
                ),
            });
        }
        let delta = decode_delta(payload).map_err(|reason| DurabilityError::CorruptFrame {
            file: file.into(),
            frame: frames,
            offset,
            reason: format!("checksum valid but payload undecodable: {reason}"),
        })?;
        offset += FRAME_HEADER_BYTES + len;
        frames += 1;
        deltas.push((delta, offset));
    }
}

/// One-shot CRC of a whole file's bytes — what manifests record for their
/// snapshot payload.
pub fn file_crc(bytes: &[u8]) -> u32 {
    crc32(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tin_graph::Time;

    fn sample_delta() -> GraphDelta {
        GraphDelta::new(
            2,
            vec![
                Node {
                    name: "alice b".into(),
                },
                Node { name: "#4".into() },
            ],
            vec![
                (NodeId(0), NodeId(2), Interaction::new(10, 2.5)),
                (NodeId(2), NodeId(3), Interaction::new(11, f64::INFINITY)),
                (NodeId(3), NodeId(1), Interaction::new(-5, 0.1 + 0.2)),
            ],
        )
        .unwrap()
        .expire_before(3)
    }

    fn segment_with(deltas: &[GraphDelta]) -> (Vec<u8>, Vec<u64>) {
        let mut bytes = SEGMENT_MAGIC.to_vec();
        let mut ends = Vec::new();
        for d in deltas {
            let payload = encode_delta(d).unwrap();
            write_frame(&mut bytes, &payload).unwrap();
            ends.push(bytes.len() as u64);
        }
        (bytes, ends)
    }

    #[test]
    fn delta_roundtrip_is_exact() {
        let d = sample_delta();
        let payload = encode_delta(&d).unwrap();
        let back = decode_delta(&payload).unwrap();
        assert_eq!(back, d);
        // Names with spaces and leading '#' survive; quantities round-trip
        // bit-exactly (0.1 + 0.2 is not 0.3).
        assert_eq!(back.new_nodes()[0].name, "alice b");
        assert_eq!(back.interactions()[2].2.quantity, 0.1 + 0.2);
        assert!(back.interactions()[1].2.quantity.is_infinite());
        assert_eq!(back.expiry(), Some(3));
    }

    #[test]
    fn expiry_only_and_empty_deltas_roundtrip() {
        let none = GraphDelta::new(5, vec![], vec![]).unwrap();
        assert_eq!(decode_delta(&encode_delta(&none).unwrap()).unwrap(), none);
        let exp = GraphDelta::new(5, vec![], vec![])
            .unwrap()
            .expire_before(Time::MIN);
        assert_eq!(decode_delta(&encode_delta(&exp).unwrap()).unwrap(), exp);
    }

    #[test]
    fn newline_in_name_is_unencodable() {
        let d = GraphDelta::new(
            0,
            vec![Node {
                name: "a\nb".into(),
            }],
            vec![],
        )
        .unwrap();
        assert!(matches!(
            encode_delta(&d),
            Err(DurabilityError::Unencodable { .. })
        ));
    }

    #[test]
    fn scan_decodes_all_frames_with_positions() {
        let d = sample_delta();
        let (bytes, ends) = segment_with(&[d.clone(), d.clone(), d.clone()]);
        let scan = scan_segment(&bytes, 0, true, "seg").unwrap();
        assert_eq!(scan.frames, 3);
        assert!(scan.torn.is_none());
        assert_eq!(scan.valid_bytes, bytes.len() as u64);
        for (i, (delta, end)) in scan.deltas.iter().enumerate() {
            assert_eq!(delta, &d);
            assert_eq!(*end, ends[i]);
        }
        // Resume from a mid-segment position.
        let resumed = scan_segment(&bytes, ends[0], true, "seg").unwrap();
        assert_eq!(resumed.frames, 2);
    }

    #[test]
    fn complete_frame_with_bad_crc_is_corruption_not_torn() {
        let (mut bytes, _) = segment_with(&[sample_delta()]);
        let flip = SEGMENT_MAGIC.len() + 12; // inside the payload
        bytes[flip] ^= 0x01;
        let err = scan_segment(&bytes, 0, true, "seg").unwrap_err();
        match err {
            DurabilityError::CorruptFrame {
                frame,
                offset,
                reason,
                ..
            } => {
                assert_eq!(frame, 0);
                assert_eq!(offset, SEGMENT_MAGIC.len() as u64);
                assert!(reason.contains("checksum"), "{reason}");
            }
            other => panic!("expected CorruptFrame, got {other:?}"),
        }
    }

    #[test]
    fn flipping_any_complete_frame_byte_is_detected() {
        let (bytes, _) = segment_with(&[sample_delta(), sample_delta()]);
        // Flip every byte of the first frame (header and payload) in turn;
        // the scan must error (never silently return a wrong delta) because
        // the frame stays complete.
        let first_frame_end = {
            let scan = scan_segment(&bytes, 0, true, "seg").unwrap();
            scan.deltas[0].1 as usize
        };
        for i in SEGMENT_MAGIC.len()..first_frame_end {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0x10;
            let r = scan_segment(&corrupted, 0, true, "seg");
            match r {
                Err(DurabilityError::CorruptFrame { .. }) => {}
                // A corrupted length field may claim more bytes than the
                // stream holds — conservatively a torn tail, but then the
                // recoverable prefix must stop before this frame.
                Ok(scan) => {
                    assert!(
                        scan.torn.is_some() && scan.valid_bytes <= SEGMENT_MAGIC.len() as u64,
                        "flip at {i} was silently accepted"
                    );
                }
                Err(e) => panic!("unexpected error for flip at {i}: {e}"),
            }
        }
    }

    #[test]
    fn bad_magic_is_corruption_even_with_tolerance() {
        let mut bytes = SEGMENT_MAGIC.to_vec();
        bytes[0] = b'X';
        assert!(matches!(
            scan_segment(&bytes, 0, true, "seg"),
            Err(DurabilityError::CorruptFrame { .. })
        ));
    }

    #[test]
    fn truncation_in_non_final_segment_context_is_an_error() {
        let (bytes, _) = segment_with(&[sample_delta()]);
        let cut = &bytes[..bytes.len() - 3];
        let err = scan_segment(cut, 0, false, "seg").unwrap_err();
        assert!(matches!(err, DurabilityError::CorruptFrame { .. }));
    }

    #[test]
    fn failpoint_written_segment_recovers_whole_frame_prefix() {
        use crate::failpoint::{Failpoint, FailpointWriter};
        let d = sample_delta();
        let payload = encode_delta(&d).unwrap();
        let frame_len = FRAME_HEADER_BYTES + payload.len() as u64;
        let magic = SEGMENT_MAGIC.len() as u64;
        // Kill the writer mid-way through the third frame.
        let cut = magic + 2 * frame_len + frame_len / 2;
        let mut w = FailpointWriter::new(Vec::new(), Failpoint::TruncateAt(cut));
        w.write_all(SEGMENT_MAGIC).unwrap();
        for _ in 0..4 {
            write_frame(&mut w, &payload).unwrap();
        }
        let bytes = w.into_inner();
        let scan = scan_segment(&bytes, 0, true, "seg").unwrap();
        assert_eq!(scan.frames, 2);
        assert_eq!(scan.valid_bytes, magic + 2 * frame_len);
        assert!(scan.torn.is_some());
    }
}
