//! Binary snapshots of the live state and the manifests that commit them.
//!
//! ## Snapshot file
//!
//! `snapshot-<seq>.snap` is a little-endian binary dump:
//!
//! ```text
//! magic "TINSNAP1" · version u32
//! journal position: segment u64 · offset u64 · frames u64
//! graph:  node count + names · edge count + per-edge
//!         (src, dst, interaction count, (time i64, quantity f64-bits)*)
//!         — tombstoned slots included, identifiers stay stable —
//!         · frontier (presence byte + i64)
//! tables: config (l2/l3/c2 flags, max_rows) · truncated flag ·
//!         3 tables × (row count, arena total, then one column per field:
//!         vertex counts u8*, vertices u32*, flow bits f64*,
//!         delivered counts u32*, delivered profiles (time, quantity bits)*)
//! trailing CRC-32 over everything above
//! ```
//!
//! Quantities are stored as `f64::to_bits`, so every value (infinities
//! included) round-trips bit-exactly. Table rows are dumped as *content*
//! (vertices, flow, delivered profile) in columnar blocks — restart latency
//! at standard scale is dominated by per-row decode overhead, and columns
//! turn that into bulk slice reads. The restore repacks the arena and
//! rebuilds the offset index via [`tin_patterns::PathTableBuilder`], which
//! resets garbage accounting to zero — row-identical under
//! [`tin_patterns::PathTables::first_row_divergence`], which never inspects
//! arena layout.
//!
//! ## Commit protocol
//!
//! Both the snapshot and its manifest are written to a `.tmp` name, fsynced,
//! and renamed into place; the *manifest* rename is the commit point. The
//! manifest (`manifest-<seq>.mf`) records the snapshot's name, byte length,
//! CRC, and the journal position the snapshot covers. A crash between the
//! two renames leaves a snapshot without a manifest — invisible to
//! recovery, exactly as if the snapshot had never been attempted.

use crate::crc::{crc32, Crc32};
use crate::error::DurabilityError;
use crate::journal::{sync_dir, JournalPos};
use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};
use tin_graph::{Edge, Interaction, Node, NodeId, TemporalGraph};
use tin_patterns::{PathTable, PathTableBuilder, PathTables, TablesConfig};

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"TINSNAP1";
const SNAPSHOT_VERSION: u32 = 1;

/// Path of snapshot `seq` under `dir`.
pub fn snapshot_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("snapshot-{seq:06}.snap"))
}

/// Path of manifest `seq` under `dir`.
pub fn manifest_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("manifest-{seq:06}.mf"))
}

/// Lists the manifests under `dir`, sorted by sequence number (ascending).
pub fn list_manifests(dir: &Path) -> Result<Vec<(u64, PathBuf)>, DurabilityError> {
    let mut found = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(found),
        Err(e) => return Err(DurabilityError::from_io(dir, e)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| DurabilityError::from_io(dir, e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(seq) = name
            .strip_prefix("manifest-")
            .and_then(|s| s.strip_suffix(".mf"))
            .and_then(|s| s.parse::<u64>().ok())
        else {
            continue;
        };
        found.push((seq, entry.path()));
    }
    found.sort_unstable();
    Ok(found)
}

// ---------------------------------------------------------------------------
// Little-endian binary primitives.
// ---------------------------------------------------------------------------

struct BinWriter {
    buf: Vec<u8>,
}

impl BinWriter {
    fn new() -> Self {
        BinWriter { buf: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

struct BinReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> BinReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        BinReader { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.buf.len() - self.pos < n {
            return Err(format!(
                "unexpected end of snapshot at byte {} (wanted {n} more)",
                self.pos
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }
    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
    fn i64(&mut self) -> Result<i64, String> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn len(&mut self, what: &str) -> Result<usize, String> {
        let n = self.u64()?;
        // A corrupt count must not trigger an absurd allocation.
        if n > self.buf.len() as u64 {
            return Err(format!("{what} count {n} exceeds the snapshot size"));
        }
        Ok(n as usize)
    }
    fn str(&mut self) -> Result<String, String> {
        let n = self.len("string byte")?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| format!("non-UTF-8 string: {e}"))
    }
    fn done(&self) -> Result<(), String> {
        if self.pos != self.buf.len() {
            return Err(format!(
                "{} trailing bytes after the snapshot body",
                self.buf.len() - self.pos
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Serialization.
// ---------------------------------------------------------------------------

fn serialize(graph: &TemporalGraph, tables: &PathTables, pos: JournalPos, frames: u64) -> Vec<u8> {
    let mut w = BinWriter::new();
    w.buf.extend_from_slice(SNAPSHOT_MAGIC);
    w.u32(SNAPSHOT_VERSION);
    w.u64(pos.segment);
    w.u64(pos.offset);
    w.u64(frames);
    // Graph: full tables, tombstones included, so identifiers stay stable.
    w.u64(graph.node_count() as u64);
    for node in graph.nodes() {
        w.str(&node.name);
    }
    w.u64(graph.edge_count() as u64);
    for edge in graph.edges() {
        w.u32(edge.src.0);
        w.u32(edge.dst.0);
        w.u64(edge.interactions.len() as u64);
        for i in &edge.interactions {
            w.i64(i.time);
            w.f64(i.quantity);
        }
    }
    match graph.frontier() {
        Some(f) => {
            w.u8(1);
            w.i64(f);
        }
        None => w.u8(0),
    }
    // Tables: configuration, truncation verdict, then row contents.
    let config = tables.config();
    w.u8(config.build_l2 as u8);
    w.u8(config.build_l3 as u8);
    w.u8(config.build_c2 as u8);
    w.u64(config.max_rows as u64);
    w.u8(tables.truncated as u8);
    // Tables are columnar: one contiguous block per field (vertex counts,
    // vertices, flows, delivered lengths, delivered profiles). Restore at
    // standard scale is dominated by per-row decode overhead, not data
    // volume (C2 runs to 10^5 rows); columns decode as bulk slices.
    for table in [&tables.l2, &tables.l3, &tables.c2] {
        w.u64(table.len() as u64);
        // Total delivered length up front so restore can size the arena in
        // one allocation instead of growing it row by row.
        let arena_total: u64 = table.iter().map(|r| table.delivered(r).len() as u64).sum();
        w.u64(arena_total);
        for row in table.iter() {
            w.u8(row.vertices().len() as u8);
        }
        for row in table.iter() {
            for v in row.vertices() {
                w.u32(v.0);
            }
        }
        for row in table.iter() {
            w.f64(row.flow);
        }
        for row in table.iter() {
            w.u32(table.delivered(row).len() as u32);
        }
        for row in table.iter() {
            for i in table.delivered(row) {
                w.i64(i.time);
                w.f64(i.quantity);
            }
        }
    }
    let crc = crc32(&w.buf);
    w.u32(crc);
    w.buf
}

/// Decodes a snapshot body (everything before the 4 trailing checksum
/// bytes). Checksum verification is [`load_snapshot`]'s job — this decoder
/// is still bounds-checked and panic-free on arbitrary bytes, so a caller
/// bug in the verification order degrades to a decode error, never a panic.
fn deserialize(bytes: &[u8]) -> Result<(TemporalGraph, PathTables, JournalPos, u64), String> {
    if bytes.len() < SNAPSHOT_MAGIC.len() + 8 {
        return Err("file too short to be a snapshot".into());
    }
    let (body, _stored) = bytes.split_at(bytes.len() - 4);
    let mut r = BinReader::new(body);
    if r.take(SNAPSHOT_MAGIC.len())? != SNAPSHOT_MAGIC {
        return Err("bad snapshot magic".into());
    }
    let version = r.u32()?;
    if version != SNAPSHOT_VERSION {
        return Err(format!("unsupported snapshot version {version}"));
    }
    let pos = JournalPos {
        segment: r.u64()?,
        offset: r.u64()?,
    };
    let frames = r.u64()?;
    let node_count = r.len("node")?;
    let mut nodes = Vec::with_capacity(node_count);
    for _ in 0..node_count {
        nodes.push(Node { name: r.str()? });
    }
    let edge_count = r.len("edge")?;
    let mut edges = Vec::with_capacity(edge_count);
    for _ in 0..edge_count {
        let src = NodeId(r.u32()?);
        let dst = NodeId(r.u32()?);
        let n = r.len("interaction")?;
        let mut interactions = Vec::with_capacity(n);
        for _ in 0..n {
            let time = r.i64()?;
            let quantity = r.f64()?;
            interactions.push(Interaction::new(time, quantity));
        }
        edges.push(Edge {
            src,
            dst,
            interactions,
        });
    }
    let frontier = match r.u8()? {
        0 => None,
        1 => Some(r.i64()?),
        t => return Err(format!("bad frontier tag {t}")),
    };
    let config = TablesConfig {
        build_l2: r.u8()? != 0,
        build_l3: r.u8()? != 0,
        build_c2: r.u8()? != 0,
        // Not through `len`: max_rows is a cap, not an element count, and
        // legitimately exceeds the snapshot size (default 2M).
        max_rows: usize::try_from(r.u64()?).map_err(|_| "max_rows overflows usize")?,
    };
    let truncated = r.u8()? != 0;
    let mut restored: Vec<PathTable> = Vec::with_capacity(3);
    // Each row streams straight into a `PathTableBuilder` — one pass, no
    // intermediate pools. One large table (C2 can run to 10^5 rows) must not
    // be copied twice on the recovery path; this decode is the dominant cost
    // of restart at standard scale.
    let mut verts = [NodeId(0); 3];
    for label in ["L2", "L3", "C2"] {
        let rows = r.len("row")?;
        // Arena interactions are 16 bytes each in the snapshot, so this count
        // is bounded by the remaining bytes and safe to reserve.
        let arena_total = r.len("arena")?;
        // Columns decode as whole slices up front — every bounds check after
        // `take` succeeds is against an exact precomputed block size, so the
        // per-row loop below runs cursor arithmetic, not reader calls.
        let nverts_col = r.take(rows)?;
        let total_verts: usize = nverts_col.iter().map(|&b| b as usize).sum();
        let verts_col = r.take(total_verts.checked_mul(4).ok_or("vertex count overflows")?)?;
        let flow_col = r.take(rows.checked_mul(8).ok_or("row count overflows")?)?;
        let ndel_col = r.take(rows.checked_mul(4).ok_or("row count overflows")?)?;
        let deliv_col = r.take(
            arena_total
                .checked_mul(16)
                .ok_or("delivered count overflows")?,
        )?;
        let mut builder = PathTableBuilder::with_capacity(rows);
        builder.reserve_arena(arena_total);
        let mut vpos = 0usize;
        let mut dpos = 0usize;
        for (i, &nv) in nverts_col.iter().enumerate() {
            let nverts = nv as usize;
            if nverts > verts.len() {
                return Err(format!("{label} row {i} has {nverts} vertices"));
            }
            let vbytes = &verts_col[vpos..vpos + nverts * 4];
            vpos += nverts * 4;
            for (slot, c) in verts.iter_mut().zip(vbytes.chunks_exact(4)) {
                *slot = NodeId(u32::from_le_bytes(c.try_into().expect("4 bytes")));
            }
            let fbytes: [u8; 8] = flow_col[i * 8..i * 8 + 8].try_into().expect("8 bytes");
            let flow = f64::from_bits(u64::from_le_bytes(fbytes));
            let nbytes: [u8; 4] = ndel_col[i * 4..i * 4 + 4].try_into().expect("4 bytes");
            let ndel = u32::from_le_bytes(nbytes) as usize;
            let dend = dpos
                .checked_add(ndel * 16)
                .filter(|&e| e <= deliv_col.len())
                .ok_or_else(|| format!("{label} row {i} delivered profile overruns arena"))?;
            let profile = deliv_col[dpos..dend].chunks_exact(16).map(|c| {
                let time = i64::from_le_bytes(c[..8].try_into().expect("8 bytes"));
                let quantity =
                    f64::from_bits(u64::from_le_bytes(c[8..].try_into().expect("8 bytes")));
                Interaction::new(time, quantity)
            });
            dpos = dend;
            builder
                .push_profile(&verts[..nverts], flow, profile)
                .map_err(|e| format!("{label} table is malformed: {e}"))?;
        }
        if dpos != deliv_col.len() {
            return Err(format!(
                "{label} arena length mismatch (declared {arena_total}, rows use {})",
                dpos / 16
            ));
        }
        restored.push(builder.finish());
    }
    r.done()?;
    let c2 = restored.pop().expect("three tables");
    let l3 = restored.pop().expect("three tables");
    let l2 = restored.pop().expect("three tables");
    // `from_stored_parts` rebuilds adjacency and index from the edge table
    // and validates; any failure there is data corruption by construction.
    let graph = TemporalGraph::from_stored_parts(nodes, edges, frontier)
        .map_err(|e| format!("graph state is corrupt: {e}"))?;
    let tables = PathTables::from_stored_parts(config, truncated, l2, l3, c2);
    Ok((graph, tables, pos, frames))
}

// ---------------------------------------------------------------------------
// Write + commit.
// ---------------------------------------------------------------------------

/// Writes snapshot `seq` of `(graph, tables)` covering the journal up to
/// `pos` (`frames` frames), committing it atomically: snapshot tmp → fsync →
/// rename, then manifest tmp → fsync → rename (the commit point), then a
/// directory fsync. Returns the manifest path.
///
/// Refuses anchor-subset tables ([`PathTables::is_partial`]): restoring one
/// would silently serve partial coverage as full coverage.
pub fn write_snapshot(
    dir: &Path,
    seq: u64,
    graph: &TemporalGraph,
    tables: &PathTables,
    pos: JournalPos,
    frames: u64,
) -> Result<PathBuf, DurabilityError> {
    if tables.is_partial() {
        return Err(DurabilityError::Unsnapshottable {
            reason: "tables cover an anchor subset (built with for_anchors); \
                     a restore would serve partial coverage as full"
                .into(),
        });
    }
    fs::create_dir_all(dir).map_err(|e| DurabilityError::from_io(dir, e))?;
    let bytes = serialize(graph, tables, pos, frames);
    let snap = snapshot_path(dir, seq);
    write_atomic(dir, &snap, &bytes)?;
    let manifest_body = format!(
        "tin-snapshot-manifest v1\nsnapshot {}\nbytes {}\ncrc {:#010x}\nsegment {}\noffset {}\nframes {}\n",
        snap.file_name().expect("snapshot file name").to_string_lossy(),
        bytes.len(),
        crc32(&bytes),
        pos.segment,
        pos.offset,
        frames,
    );
    let manifest = manifest_path(dir, seq);
    write_atomic(dir, &manifest, manifest_body.as_bytes())?;
    Ok(manifest)
}

/// Temp-file + fsync + rename + directory fsync.
fn write_atomic(dir: &Path, target: &Path, bytes: &[u8]) -> Result<(), DurabilityError> {
    let tmp = target.with_extension("tmp");
    let mut f = File::create(&tmp).map_err(|e| DurabilityError::from_io(&tmp, e))?;
    f.write_all(bytes)
        .and_then(|()| f.sync_all())
        .map_err(|e| DurabilityError::from_io(&tmp, e))?;
    drop(f);
    fs::rename(&tmp, target).map_err(|e| DurabilityError::from_io(target, e))?;
    sync_dir(dir)?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Load.
// ---------------------------------------------------------------------------

/// Parsed manifest contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Snapshot file name (relative to the durable directory).
    pub snapshot: String,
    /// Expected snapshot byte length.
    pub bytes: u64,
    /// Expected CRC-32 of the whole snapshot file.
    pub crc: u32,
    /// Journal position the snapshot covers.
    pub pos: JournalPos,
    /// Frames applied up to that position.
    pub frames: u64,
}

/// Parses a manifest file. Any malformation (torn write, wrong header) is a
/// [`DurabilityError::CorruptSnapshot`] naming the manifest.
pub fn read_manifest(path: &Path) -> Result<Manifest, DurabilityError> {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string());
    let corrupt = |reason: String| DurabilityError::CorruptSnapshot {
        file: name.clone(),
        reason,
    };
    let text =
        fs::read_to_string(path).map_err(|e| corrupt(format!("unreadable manifest: {e}")))?;
    let mut lines = text.lines();
    if lines.next() != Some("tin-snapshot-manifest v1") {
        return Err(corrupt("bad manifest header".into()));
    }
    let mut snapshot = None;
    let mut bytes = None;
    let mut crc = None;
    let mut segment = None;
    let mut offset = None;
    let mut frames = None;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((key, value)) = line.split_once(' ') else {
            return Err(corrupt(format!("malformed manifest line `{line}`")));
        };
        match key {
            "snapshot" => snapshot = Some(value.to_string()),
            "bytes" => bytes = value.parse::<u64>().ok(),
            "crc" => {
                crc = value
                    .strip_prefix("0x")
                    .and_then(|v| u32::from_str_radix(v, 16).ok())
            }
            "segment" => segment = value.parse::<u64>().ok(),
            "offset" => offset = value.parse::<u64>().ok(),
            "frames" => frames = value.parse::<u64>().ok(),
            other => return Err(corrupt(format!("unknown manifest key `{other}`"))),
        }
    }
    match (snapshot, bytes, crc, segment, offset, frames) {
        (Some(snapshot), Some(bytes), Some(crc), Some(segment), Some(offset), Some(frames)) => {
            Ok(Manifest {
                snapshot,
                bytes,
                crc,
                pos: JournalPos { segment, offset },
                frames,
            })
        }
        _ => Err(corrupt("manifest is missing fields (torn write?)".into())),
    }
}

/// Loads and fully verifies the snapshot a manifest points at: byte length
/// and CRC against the manifest, then the snapshot's own trailing CRC, then
/// semantic validation of the decoded graph.
pub fn load_snapshot(
    dir: &Path,
    manifest: &Manifest,
) -> Result<(TemporalGraph, PathTables, JournalPos, u64), DurabilityError> {
    let path = dir.join(&manifest.snapshot);
    let corrupt = |reason: String| DurabilityError::CorruptSnapshot {
        file: manifest.snapshot.clone(),
        reason,
    };
    let bytes = fs::read(&path).map_err(|e| corrupt(format!("unreadable snapshot: {e}")))?;
    if bytes.len() as u64 != manifest.bytes || bytes.len() < 4 {
        return Err(corrupt(format!(
            "length mismatch (manifest says {}, file has {})",
            manifest.bytes,
            bytes.len()
        )));
    }
    // One CRC pass yields both sums: the body CRC (compared against the
    // snapshot's own trailer) and, continuing over the trailer bytes, the
    // whole-file CRC the manifest recorded. Both checks run before the
    // decode, so `deserialize` only ever sees verified bytes here.
    let (body, trailer) = bytes.split_at(bytes.len() - 4);
    let mut crc = Crc32::new();
    crc.update(body);
    let body_crc = crc.finish();
    let mut whole = crc;
    whole.update(trailer);
    let actual = whole.finish();
    if actual != manifest.crc {
        return Err(corrupt(format!(
            "manifest checksum mismatch (manifest {:#010x}, file {actual:#010x})",
            manifest.crc
        )));
    }
    let stored_crc = u32::from_le_bytes(trailer.try_into().expect("4 bytes"));
    if body_crc != stored_crc {
        return Err(corrupt(format!(
            "checksum mismatch (stored {stored_crc:#010x}, computed {body_crc:#010x})"
        )));
    }
    let (graph, tables, pos, frames) = deserialize(&bytes).map_err(corrupt)?;
    if pos != manifest.pos {
        return Err(DurabilityError::CorruptSnapshot {
            file: manifest.snapshot.clone(),
            reason: format!(
                "journal position mismatch (manifest {:?}, snapshot {:?})",
                manifest.pos, pos
            ),
        });
    }
    Ok((graph, tables, pos, frames))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tin_graph::GraphDelta;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tin-snapshot-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn windowed_state() -> (TemporalGraph, PathTables) {
        // A graph that has lived: appends, then a window eviction that
        // tombstones an edge and sets the frontier.
        let mut g = TemporalGraph::new();
        let delta = GraphDelta::new(
            0,
            (0..5)
                .map(|i| Node {
                    name: format!("v{i} name"),
                })
                .collect(),
            vec![
                (NodeId(0), NodeId(1), Interaction::new(1, 5.0)),
                (NodeId(1), NodeId(0), Interaction::new(2, 3.0)),
                (NodeId(1), NodeId(2), Interaction::new(3, 4.0)),
                (NodeId(2), NodeId(0), Interaction::new(4, 2.0)),
                (NodeId(3), NodeId(4), Interaction::new(1, 7.0)),
            ],
        )
        .unwrap();
        let mut tables = PathTables::build(&g, &TablesConfig::default());
        let applied = g.apply(&delta).unwrap();
        tables.apply(&g, &applied);
        let evict = GraphDelta::new(5, vec![], vec![]).unwrap().expire_before(2);
        let applied = g.apply(&evict).unwrap();
        tables.apply(&g, &applied);
        g.validate().unwrap();
        assert!(g.frontier().is_some());
        assert!(g.edges().iter().any(Edge::is_tombstone));
        (g, tables)
    }

    #[test]
    fn snapshot_roundtrip_is_row_identical() {
        let dir = temp_dir("roundtrip");
        let (g, tables) = windowed_state();
        let pos = JournalPos {
            segment: 2,
            offset: 123,
        };
        write_snapshot(&dir, 1, &g, &tables, pos, 42).unwrap();
        let manifests = list_manifests(&dir).unwrap();
        assert_eq!(manifests.len(), 1);
        let manifest = read_manifest(&manifests[0].1).unwrap();
        assert_eq!(manifest.pos, pos);
        assert_eq!(manifest.frames, 42);
        let (g2, t2, pos2, frames2) = load_snapshot(&dir, &manifest).unwrap();
        assert_eq!(g2, g);
        g2.validate().unwrap();
        assert_eq!(pos2, pos);
        assert_eq!(frames2, 42);
        assert_eq!(tables.first_row_divergence(&t2), None);
        // No leftover temp files after a clean commit.
        assert!(fs::read_dir(&dir).unwrap().all(|e| !e
            .unwrap()
            .file_name()
            .to_string_lossy()
            .ends_with(".tmp")));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_bitflip_in_snapshot_is_detected() {
        let dir = temp_dir("bitflip");
        let (g, tables) = windowed_state();
        write_snapshot(&dir, 0, &g, &tables, JournalPos::start(), 0).unwrap();
        let manifest = read_manifest(&manifest_path(&dir, 0)).unwrap();
        let snap = snapshot_path(&dir, 0);
        let clean = fs::read(&snap).unwrap();
        // Flip a byte at several positions (header, graph, tables, crc) and
        // verify the load always fails loudly.
        let positions: Vec<usize> = (0..clean.len())
            .step_by((clean.len() / 57).max(1))
            .collect();
        for &i in &positions {
            let mut corrupted = clean.clone();
            corrupted[i] ^= 0x20;
            fs::write(&snap, &corrupted).unwrap();
            let err = load_snapshot(&dir, &manifest).unwrap_err();
            assert!(
                matches!(err, DurabilityError::CorruptSnapshot { .. }),
                "flip at {i} gave {err:?}"
            );
        }
        fs::write(&snap, &clean).unwrap();
        load_snapshot(&dir, &manifest).unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_snapshot_and_manifest_are_detected() {
        let dir = temp_dir("truncate");
        let (g, tables) = windowed_state();
        write_snapshot(&dir, 0, &g, &tables, JournalPos::start(), 7).unwrap();
        let snap = snapshot_path(&dir, 0);
        let manifest = read_manifest(&manifest_path(&dir, 0)).unwrap();
        let clean = fs::read(&snap).unwrap();
        fs::write(&snap, &clean[..clean.len() / 2]).unwrap();
        assert!(matches!(
            load_snapshot(&dir, &manifest).unwrap_err(),
            DurabilityError::CorruptSnapshot { .. }
        ));
        fs::write(&snap, &clean).unwrap();
        // Torn manifest: cut mid-line.
        let mpath = manifest_path(&dir, 0);
        let mtext = fs::read(&mpath).unwrap();
        fs::write(&mpath, &mtext[..mtext.len() - 10]).unwrap();
        assert!(matches!(
            read_manifest(&mpath).unwrap_err(),
            DurabilityError::CorruptSnapshot { .. }
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn partial_tables_are_refused() {
        let dir = temp_dir("partial");
        let (g, _) = windowed_state();
        let partial = PathTables::for_anchors(&g, &TablesConfig::default(), &[NodeId(0)]);
        assert!(matches!(
            write_snapshot(&dir, 0, &g, &partial, JournalPos::start(), 0),
            Err(DurabilityError::Unsnapshottable { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }
}
