//! # tin-durable
//!
//! Crash-safe durability for the streaming pipeline: a write-ahead delta
//! journal, binary snapshots of [`tin_graph::TemporalGraph`] +
//! [`tin_patterns::PathTables`], and a recovery manager that reassembles the
//! live state after a kill — snapshot load plus journal-tail re-apply,
//! row-identical to an uninterrupted run.
//!
//! The moving parts:
//!
//! * [`frame`] — the journal frame codec: length-prefixed, CRC32-checksummed
//!   frames whose payload is a [`tin_graph::GraphDelta`] in the hardened
//!   text format (expiry frontier included). The segment scanner tolerates a
//!   torn tail (a crash mid-write) by stopping at the last whole valid frame
//!   and reporting the exact recoverable prefix; a *complete* frame whose
//!   checksum fails is corruption and raises a typed, positional error.
//! * [`journal`] — append-only segment files with an fsync-on-batch policy
//!   and size-based rotation, plus multi-segment replay.
//! * [`snapshot`] — binary serialization of the graph (tombstones and
//!   frontier included) and the path tables (row contents, configuration,
//!   truncation verdict), committed atomically via temp-file + rename with a
//!   manifest tying each snapshot to its journal position.
//! * [`recovery`] — the startup ladder: newest valid snapshot → older
//!   snapshot → full journal replay, then journal-tail re-apply through the
//!   existing [`tin_graph::TemporalGraph::apply`] /
//!   [`tin_patterns::PathTables::apply`] path.
//! * [`store`] — [`DurableStore`], the glue used by examples and benches:
//!   journal-then-apply per delta (the [`tin_datasets::DeltaStream`] tee)
//!   and on-demand snapshots.
//! * [`failpoint`] — [`FailpointWriter`], the fault-injection harness the
//!   crash-matrix tests drive: drop, truncate, or bit-flip at a chosen byte
//!   offset.
//!
//! ## Example
//!
//! ```
//! use tin_durable::{DurableStore, JournalConfig};
//! use tin_graph::{GraphDelta, Interaction, Node, NodeId};
//! use tin_patterns::TablesConfig;
//!
//! let dir = std::env::temp_dir().join(format!("tin-durable-doc-{}", std::process::id()));
//! let (mut store, report) =
//!     DurableStore::open(&dir, TablesConfig::default(), JournalConfig::default()).unwrap();
//! assert_eq!(report.replayed, 0);
//!
//! let delta = GraphDelta::new(
//!     0,
//!     vec![Node { name: "a".into() }, Node { name: "b".into() }],
//!     vec![(NodeId(0), NodeId(1), Interaction::new(1, 5.0))],
//! )
//! .unwrap();
//! store.apply(&delta).unwrap();
//! drop(store);
//!
//! // A restart recovers the applied state from the journal.
//! let (store, report) =
//!     DurableStore::open(&dir, TablesConfig::default(), JournalConfig::default()).unwrap();
//! assert_eq!(report.replayed, 1);
//! assert_eq!(store.graph().interaction_count(), 1);
//! # drop(store);
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc;
pub mod error;
pub mod failpoint;
pub mod frame;
pub mod journal;
pub mod recovery;
pub mod snapshot;
pub mod store;

pub use crc::crc32;
pub use error::DurabilityError;
pub use failpoint::{Failpoint, FailpointWriter};
pub use frame::{SegmentScan, TornTail};
pub use journal::{compact_before, Journal, JournalConfig, JournalPos, JournalReplay};
pub use recovery::{Recovered, Recovery, RecoveryReport, RecoverySource};
pub use store::DurableStore;
