//! Fault injection for durability tests: a [`FailpointWriter`] that corrupts
//! its byte stream at a chosen offset, the way a crash, a torn sector, or
//! bit rot would.
//!
//! The writer is deliberately *silent*: a truncating failpoint reports every
//! write as fully successful while discarding the tail, exactly like a
//! process that was SIGKILLed after the kernel accepted the write but before
//! the data reached the platter. The crash-matrix tests build journal
//! segments and snapshots through this writer and then assert that recovery
//! degrades the way the design says it must.

use std::io::{self, Write};

/// What to do to the byte stream, positioned by absolute byte offset from
/// the start of the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Failpoint {
    /// Pass everything through unchanged.
    None,
    /// Silently discard every byte at offset `>= 0`-based `at` — the file
    /// ends mid-write, as after a kill. Writes still report full success.
    TruncateAt(u64),
    /// Silently skip `len` bytes starting at `at`, then resume writing the
    /// later bytes — a lost write in the middle of the stream.
    Drop {
        /// First byte offset to drop.
        at: u64,
        /// Number of bytes to drop.
        len: u64,
    },
    /// XOR the byte at offset `at` with `0x40` — a single flipped bit.
    BitFlipAt(u64),
}

/// A [`Write`] adapter that applies one [`Failpoint`] to the stream passing
/// through it. See the [module docs](self).
#[derive(Debug)]
pub struct FailpointWriter<W: Write> {
    inner: W,
    mode: Failpoint,
    /// Logical bytes accepted so far (what the writer *believes* it wrote).
    written: u64,
}

impl<W: Write> FailpointWriter<W> {
    /// Wraps `inner`, applying `mode`.
    pub fn new(inner: W, mode: Failpoint) -> Self {
        FailpointWriter {
            inner,
            mode,
            written: 0,
        }
    }

    /// Logical bytes accepted so far — what an unfaulted writer would have
    /// written.
    pub fn logical_written(&self) -> u64 {
        self.written
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FailpointWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let start = self.written;
        let end = start + buf.len() as u64;
        match self.mode {
            Failpoint::None => self.inner.write_all(buf)?,
            Failpoint::TruncateAt(at) => {
                if start < at {
                    let keep = (at - start).min(buf.len() as u64) as usize;
                    self.inner.write_all(&buf[..keep])?;
                }
            }
            Failpoint::Drop { at, len } => {
                let hole_end = at + len;
                for (i, &b) in buf.iter().enumerate() {
                    let pos = start + i as u64;
                    if pos < at || pos >= hole_end {
                        self.inner.write_all(&[b])?;
                    }
                }
            }
            Failpoint::BitFlipAt(at) => {
                if at >= start && at < end {
                    let i = (at - start) as usize;
                    self.inner.write_all(&buf[..i])?;
                    self.inner.write_all(&[buf[i] ^ 0x40])?;
                    self.inner.write_all(&buf[i + 1..])?;
                } else {
                    self.inner.write_all(buf)?;
                }
            }
        }
        self.written = end;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn through(mode: Failpoint, chunks: &[&[u8]]) -> Vec<u8> {
        let mut w = FailpointWriter::new(Vec::new(), mode);
        for c in chunks {
            w.write_all(c).unwrap();
        }
        w.into_inner()
    }

    #[test]
    fn passthrough() {
        assert_eq!(through(Failpoint::None, &[b"abc", b"def"]), b"abcdef");
    }

    #[test]
    fn truncate_cuts_across_write_boundaries() {
        // Cut inside the second chunk; later chunks vanish entirely.
        assert_eq!(
            through(Failpoint::TruncateAt(4), &[b"abc", b"def", b"ghi"]),
            b"abcd"
        );
        assert_eq!(through(Failpoint::TruncateAt(0), &[b"abc"]), b"");
        // Writes still report success and count logically.
        let mut w = FailpointWriter::new(Vec::new(), Failpoint::TruncateAt(1));
        w.write_all(b"abcdef").unwrap();
        assert_eq!(w.logical_written(), 6);
        assert_eq!(w.into_inner(), b"a");
    }

    #[test]
    fn drop_skips_a_middle_range() {
        assert_eq!(
            through(Failpoint::Drop { at: 2, len: 3 }, &[b"abc", b"def"]),
            b"abf"
        );
    }

    #[test]
    fn bitflip_flips_exactly_one_byte() {
        let out = through(Failpoint::BitFlipAt(3), &[b"abc", b"def"]);
        assert_eq!(out.len(), 6);
        assert_eq!(&out[..3], b"abc");
        assert_eq!(out[3], b'd' ^ 0x40);
        assert_eq!(&out[4..], b"ef");
    }
}
