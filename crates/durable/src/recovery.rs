//! Startup recovery: pick the newest valid snapshot, replay the journal
//! tail, degrade gracefully when artifacts are damaged.
//!
//! The degradation ladder, top to bottom:
//!
//! 1. **Newest manifest** whose snapshot loads and verifies → restore it and
//!    replay the journal from the recorded position.
//! 2. Any failure there (unreadable/torn manifest, snapshot length/CRC/decode
//!    mismatch) → try the **next-older manifest**, recording what was
//!    discarded and why.
//! 3. No usable snapshot → **full replay** of the journal from its start
//!    against an empty graph.
//! 4. No journal either → **fresh** empty state.
//!
//! Two failures do *not* degrade, by design: a corrupt frame in the middle
//! of the journal (silently skipping committed deltas would be worse than
//! stopping — the error carries file, frame index, and byte offset so the
//! operator can decide), and a delta the graph itself refuses during replay
//! (the journal only ever records deltas that already applied once, so a
//! rejection means real corruption that the frame CRC happened to miss).
//!
//! A torn frame at the very tail of the last segment is *not* a failure:
//! it is the expected signature of a crash mid-append, and recovery reports
//! it in [`RecoveryReport::torn_tail`] while recovering everything before it.

use crate::error::DurabilityError;
use crate::frame::TornTail;
use crate::journal::{list_segments, JournalPos};
use crate::snapshot::{list_manifests, load_snapshot, read_manifest};
use std::path::{Path, PathBuf};
use tin_graph::TemporalGraph;
use tin_patterns::{PathTables, TablesConfig};

/// Where the recovered state came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoverySource {
    /// Restored from a snapshot, then replayed the journal tail.
    Snapshot {
        /// Manifest file name that committed the snapshot.
        manifest: String,
        /// Snapshot file name.
        snapshot: String,
    },
    /// No usable snapshot; the whole journal was replayed from the start.
    FullReplay,
    /// Neither snapshot nor journal; the state is empty.
    Fresh,
}

/// What recovery did and where it left the journal cursor.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Journal position after the last applied frame — where appends resume.
    pub position: JournalPos,
    /// Total frames reflected in the recovered state (snapshot + replayed).
    pub frames: u64,
    /// Frames re-applied from the journal during this recovery.
    pub replayed: u64,
    /// Where the state came from.
    pub source: RecoverySource,
    /// Artifacts that were tried and rejected, newest first, with reasons.
    pub discarded: Vec<String>,
    /// A torn tail detected (and ignored) at the end of the last segment.
    pub torn_tail: Option<TornTail>,
}

/// The recovered state plus its [`RecoveryReport`].
#[derive(Debug)]
pub struct Recovered {
    /// The graph, identical to the moment the last durable frame applied.
    pub graph: TemporalGraph,
    /// Path tables maintained through the same sequence of deltas.
    pub tables: PathTables,
    /// What happened during recovery.
    pub report: RecoveryReport,
}

/// Startup recovery manager for one durable directory.
#[derive(Debug, Clone)]
pub struct Recovery {
    dir: PathBuf,
    tables_config: TablesConfig,
}

impl Recovery {
    /// A recovery manager over `dir`, restoring tables under
    /// `tables_config`.
    pub fn new(dir: &Path, tables_config: TablesConfig) -> Self {
        Recovery {
            dir: dir.to_path_buf(),
            tables_config,
        }
    }

    /// Runs the degradation ladder described in the [module docs](self) and
    /// returns the recovered state. Read-only: never deletes or truncates
    /// anything (the journal's own `open` handles tail truncation when the
    /// store reopens for writing).
    pub fn run(&self) -> Result<Recovered, DurabilityError> {
        let mut discarded = Vec::new();

        // Rung 1–2: newest manifest first, falling back on damage.
        let mut manifests = list_manifests(&self.dir)?;
        manifests.reverse();
        for (seq, path) in &manifests {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| path.display().to_string());
            let restored = read_manifest(path).and_then(|manifest| {
                load_snapshot(&self.dir, &manifest).map(|state| (manifest.snapshot.clone(), state))
            });
            match restored {
                Ok((snapshot, (graph, tables, pos, frames))) => {
                    return self.finish_from_snapshot(
                        graph,
                        tables,
                        pos,
                        frames,
                        RecoverySource::Snapshot {
                            manifest: name,
                            snapshot,
                        },
                        discarded,
                    );
                }
                Err(e) => {
                    discarded.push(format!("manifest {seq:06}: {e}"));
                }
            }
        }

        // Rung 3–4: no snapshot. Full replay if there is a journal, fresh
        // state otherwise.
        let has_journal = !list_segments(&self.dir)?.is_empty();
        let graph = TemporalGraph::new();
        let tables = PathTables::build(&graph, &self.tables_config);
        let source = if has_journal {
            RecoverySource::FullReplay
        } else {
            RecoverySource::Fresh
        };
        self.finish_from_snapshot(graph, tables, JournalPos::start(), 0, source, discarded)
    }

    /// Replays the journal tail from `pos` onto `(graph, tables)` and
    /// assembles the report.
    fn finish_from_snapshot(
        &self,
        mut graph: TemporalGraph,
        mut tables: PathTables,
        pos: JournalPos,
        frames: u64,
        source: RecoverySource,
        discarded: Vec<String>,
    ) -> Result<Recovered, DurabilityError> {
        // The snapshot may have been produced under a different table
        // configuration than the one requested now; rebuild rather than
        // serve rows the caller did not ask for (or miss ones they did).
        if *tables.config() != self.tables_config {
            tables = PathTables::build(&graph, &self.tables_config);
        }
        let replay = crate::journal::replay_from(&self.dir, pos)?;
        let mut replayed = 0u64;
        for (delta, frame_pos) in &replay.deltas {
            let applied = graph.apply(delta).map_err(|e| DurabilityError::Replay {
                file: format!("journal-{:06}.wal", frame_pos.segment),
                frame: frames + replayed,
                offset: frame_pos.offset,
                source: e,
            })?;
            tables.apply(&graph, &applied);
            replayed += 1;
        }
        Ok(Recovered {
            graph,
            tables,
            report: RecoveryReport {
                position: replay.end,
                frames: frames + replayed,
                replayed,
                source,
                discarded,
                torn_tail: replay.torn.map(|(_, t)| t),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{Journal, JournalConfig};
    use crate::snapshot::{manifest_path, snapshot_path, write_snapshot};
    use std::fs;
    use tin_graph::{GraphDelta, Interaction, Node, NodeId};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tin-recovery-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// Delta `i`: adds node v{i}; for i > 0 also an interaction
    /// v{i-1} → v{i} at time i.
    fn delta(i: u32) -> GraphDelta {
        let nodes = vec![Node {
            name: format!("v{i}"),
        }];
        let interactions = if i == 0 {
            vec![]
        } else {
            vec![(
                NodeId(i - 1),
                NodeId(i),
                Interaction::new(i as i64, 1.0 + i as f64),
            )]
        };
        GraphDelta::new(i as usize, nodes, interactions).unwrap()
    }

    /// Builds the reference state by applying deltas 0..n directly.
    fn reference(n: u32, config: &TablesConfig) -> (TemporalGraph, PathTables) {
        let mut g = TemporalGraph::new();
        let mut t = PathTables::build(&g, config);
        for i in 0..n {
            let applied = g.apply(&delta(i)).unwrap();
            t.apply(&g, &applied);
        }
        (g, t)
    }

    /// Journals deltas 0..n, snapshotting after `snap_at` (if given).
    fn populate(dir: &Path, n: u32, snap_at: Option<u32>) {
        let config = TablesConfig::default();
        let mut journal = Journal::open(dir, JournalConfig::default()).unwrap();
        let mut g = TemporalGraph::new();
        let mut t = PathTables::build(&g, &config);
        for i in 0..n {
            let d = delta(i);
            let applied = g.apply(&d).unwrap();
            journal.append(&d).unwrap();
            t.apply(&g, &applied);
            if Some(i + 1) == snap_at {
                write_snapshot(dir, 0, &g, &t, journal.position(), (i + 1) as u64).unwrap();
            }
        }
        journal.sync().unwrap();
    }

    #[test]
    fn fresh_directory_recovers_empty() {
        let dir = temp_dir("fresh");
        let rec = Recovery::new(&dir, TablesConfig::default()).run().unwrap();
        assert_eq!(rec.report.source, RecoverySource::Fresh);
        assert_eq!(rec.report.frames, 0);
        assert_eq!(rec.graph.node_count(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn full_replay_without_snapshot_matches_reference() {
        let dir = temp_dir("fullreplay");
        populate(&dir, 8, None);
        let config = TablesConfig::default();
        let rec = Recovery::new(&dir, config).run().unwrap();
        assert_eq!(rec.report.source, RecoverySource::FullReplay);
        assert_eq!(rec.report.replayed, 8);
        let (g, t) = reference(8, &config);
        assert_eq!(rec.graph, g);
        assert_eq!(t.first_row_divergence(&rec.tables), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_plus_tail_matches_reference() {
        let dir = temp_dir("snaptail");
        populate(&dir, 10, Some(6));
        let config = TablesConfig::default();
        let rec = Recovery::new(&dir, config).run().unwrap();
        assert!(matches!(rec.report.source, RecoverySource::Snapshot { .. }));
        assert_eq!(rec.report.replayed, 4);
        assert_eq!(rec.report.frames, 10);
        let (g, t) = reference(10, &config);
        assert_eq!(rec.graph, g);
        assert_eq!(t.first_row_divergence(&rec.tables), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_full_replay() {
        let dir = temp_dir("fallback");
        populate(&dir, 10, Some(6));
        // Flip a byte in the middle of the snapshot body.
        let snap = snapshot_path(&dir, 0);
        let mut bytes = fs::read(&snap).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&snap, &bytes).unwrap();
        let config = TablesConfig::default();
        let rec = Recovery::new(&dir, config).run().unwrap();
        assert_eq!(rec.report.source, RecoverySource::FullReplay);
        assert_eq!(rec.report.replayed, 10);
        assert_eq!(rec.report.discarded.len(), 1);
        assert!(rec.report.discarded[0].contains("checksum"));
        let (g, t) = reference(10, &config);
        assert_eq!(rec.graph, g);
        assert_eq!(t.first_row_divergence(&rec.tables), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn orphan_snapshot_without_manifest_is_invisible() {
        let dir = temp_dir("orphan");
        populate(&dir, 6, Some(4));
        // Simulate a crash between the snapshot rename and the manifest
        // rename: the manifest vanishes, the snapshot stays.
        fs::remove_file(manifest_path(&dir, 0)).unwrap();
        let config = TablesConfig::default();
        let rec = Recovery::new(&dir, config).run().unwrap();
        assert_eq!(rec.report.source, RecoverySource::FullReplay);
        assert!(rec.report.discarded.is_empty());
        let (g, t) = reference(6, &config);
        assert_eq!(rec.graph, g);
        assert_eq!(t.first_row_divergence(&rec.tables), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn older_snapshot_is_used_when_newest_is_damaged() {
        let dir = temp_dir("older");
        let config = TablesConfig::default();
        let mut journal = Journal::open(&dir, JournalConfig::default()).unwrap();
        let mut g = TemporalGraph::new();
        let mut t = PathTables::build(&g, &config);
        for i in 0..9 {
            let d = delta(i);
            let applied = g.apply(&d).unwrap();
            journal.append(&d).unwrap();
            t.apply(&g, &applied);
            if i == 3 {
                write_snapshot(&dir, 0, &g, &t, journal.position(), 4).unwrap();
            }
            if i == 6 {
                write_snapshot(&dir, 1, &g, &t, journal.position(), 7).unwrap();
            }
        }
        journal.sync().unwrap();
        drop(journal);
        // Truncate the newest snapshot; recovery must fall back to seq 0.
        let newest = snapshot_path(&dir, 1);
        let len = fs::metadata(&newest).unwrap().len();
        fs::File::options()
            .write(true)
            .open(&newest)
            .unwrap()
            .set_len(len / 3)
            .unwrap();
        let rec = Recovery::new(&dir, config).run().unwrap();
        match &rec.report.source {
            RecoverySource::Snapshot { snapshot, .. } => {
                assert!(snapshot.contains("000000"), "used {snapshot}");
            }
            other => panic!("expected snapshot source, got {other:?}"),
        }
        assert_eq!(rec.report.replayed, 5);
        assert_eq!(rec.report.discarded.len(), 1);
        let (g2, t2) = reference(9, &config);
        assert_eq!(rec.graph, g2);
        assert_eq!(t2.first_row_divergence(&rec.tables), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn config_mismatch_rebuilds_tables() {
        let dir = temp_dir("config");
        populate(&dir, 6, Some(4));
        // Recover with a narrower configuration than the snapshot's.
        let narrow = TablesConfig {
            build_c2: false,
            ..TablesConfig::default()
        };
        let rec = Recovery::new(&dir, narrow).run().unwrap();
        assert_eq!(*rec.tables.config(), narrow);
        assert_eq!(rec.tables.c2.len(), 0);
        let (_, t) = reference(6, &narrow);
        assert_eq!(t.first_row_divergence(&rec.tables), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_reported_and_ignored() {
        let dir = temp_dir("torn");
        populate(&dir, 5, None);
        // Tear the last frame: chop 3 bytes off the single segment.
        let seg = crate::journal::segment_path(&dir, 0);
        let len = fs::metadata(&seg).unwrap().len();
        fs::File::options()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(len - 3)
            .unwrap();
        let config = TablesConfig::default();
        let rec = Recovery::new(&dir, config).run().unwrap();
        assert_eq!(rec.report.replayed, 4);
        assert!(rec.report.torn_tail.is_some());
        let (g, t) = reference(4, &config);
        assert_eq!(rec.graph, g);
        assert_eq!(t.first_row_divergence(&rec.tables), None);
        fs::remove_dir_all(&dir).unwrap();
    }
}
