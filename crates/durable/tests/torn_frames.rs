//! Satellite pinning of the frame reader's torn-tail contract: truncating a
//! valid segment at **every** byte offset, the reader must (a) never panic,
//! (b) never return a partial frame, and (c) report the exact recoverable
//! prefix — the magic plus every whole frame that fits strictly inside the
//! cut.
//!
//! An exhaustive loop covers a fixed representative segment at every
//! offset; a property test repeats the exercise over randomly generated
//! delta sequences (random names, quantities including `inf`, expiry
//! frontiers) with the cut offset chosen per case.

use proptest::prelude::*;
use tin_durable::frame::{encode_delta, scan_segment, write_frame, SEGMENT_MAGIC};
use tin_graph::{GraphDelta, Interaction, Node, NodeId};

/// Builds a segment byte image and returns `(bytes, boundaries)`, where
/// `boundaries[k]` is the byte length of the prefix containing exactly `k`
/// whole frames (boundaries[0] is the magic length).
fn build_segment(deltas: &[GraphDelta]) -> (Vec<u8>, Vec<u64>) {
    let mut bytes = SEGMENT_MAGIC.to_vec();
    let mut boundaries = vec![bytes.len() as u64];
    for d in deltas {
        let payload = encode_delta(d).unwrap();
        write_frame(&mut bytes, &payload).unwrap();
        boundaries.push(bytes.len() as u64);
    }
    (bytes, boundaries)
}

/// The contract under truncation at `cut`: scanning `bytes[..cut]` with a
/// tolerant reader yields exactly the frames whose boundary is `<= cut`,
/// reports `valid_bytes` equal to that boundary, and flags a torn tail iff
/// the cut landed strictly inside a frame (or inside the magic).
fn assert_truncation_contract(bytes: &[u8], boundaries: &[u64], deltas: &[GraphDelta], cut: usize) {
    let cut_u = cut as u64;
    let scan = scan_segment(&bytes[..cut], 0, true, "seg").unwrap();
    let whole = boundaries.iter().filter(|&&b| b > 0 && b <= cut_u).count();
    // boundaries[0] is the magic, not a frame.
    let whole_frames = whole.saturating_sub(if cut_u >= boundaries[0] { 1 } else { 0 });
    assert_eq!(
        scan.frames, whole_frames as u64,
        "cut at {cut}: wrong frame count"
    );
    assert_eq!(scan.deltas.len(), whole_frames, "cut at {cut}");
    // Exact recoverable prefix: the largest boundary at or below the cut
    // (0 when even the magic is cut short).
    let expect_valid = boundaries
        .iter()
        .copied()
        .filter(|&b| b <= cut_u)
        .max()
        .unwrap_or(0);
    assert_eq!(
        scan.valid_bytes, expect_valid,
        "cut at {cut}: wrong recoverable prefix"
    );
    let on_boundary = boundaries.contains(&cut_u);
    assert_eq!(
        scan.torn.is_some(),
        !on_boundary,
        "cut at {cut}: torn flag (boundaries {boundaries:?})"
    );
    if let Some(torn) = &scan.torn {
        assert_eq!(torn.offset, expect_valid, "cut at {cut}: torn offset");
    }
    // Never a partial frame: every returned delta is bit-identical to the
    // original at its index.
    for (i, (got, end)) in scan.deltas.iter().enumerate() {
        assert_eq!(got, &deltas[i], "cut at {cut}: frame {i} differs");
        assert_eq!(*end, boundaries[i + 1], "cut at {cut}: frame {i} end");
    }
}

/// A small but representative delta mix: empty delta, multi-record delta,
/// unicode names, an infinite quantity, an expiry frontier.
fn representative_deltas() -> Vec<GraphDelta> {
    vec![
        GraphDelta::new(0, vec![], vec![]).unwrap(),
        GraphDelta::new(
            0,
            vec![
                Node {
                    name: "alice".into(),
                },
                Node {
                    name: "böb µ-unit".into(),
                },
            ],
            vec![
                (NodeId(0), NodeId(1), Interaction::new(3, 2.5)),
                (NodeId(1), NodeId(0), Interaction::new(5, f64::INFINITY)),
            ],
        )
        .unwrap(),
        GraphDelta::new(
            2,
            vec![Node {
                name: "carol".into(),
            }],
            vec![(NodeId(1), NodeId(2), Interaction::new(9, 0.125))],
        )
        .unwrap()
        .expire_before(4),
    ]
}

/// Every byte offset of the representative segment, exhaustively.
#[test]
fn truncation_at_every_byte_offset_recovers_exact_prefix() {
    let deltas = representative_deltas();
    let (bytes, boundaries) = build_segment(&deltas);
    for cut in 0..=bytes.len() {
        assert_truncation_contract(&bytes, &boundaries, &deltas, cut);
    }
}

/// The intolerant reader (non-final segments) must reject every cut that is
/// not a frame boundary, and accept every cut that is.
#[test]
fn intolerant_reader_rejects_every_non_boundary_cut() {
    let deltas = representative_deltas();
    let (bytes, boundaries) = build_segment(&deltas);
    for cut in 0..=bytes.len() {
        let result = scan_segment(&bytes[..cut], 0, false, "seg");
        if boundaries.contains(&(cut as u64)) {
            let scan = result.unwrap_or_else(|e| panic!("boundary cut {cut} rejected: {e}"));
            assert!(scan.torn.is_none());
        } else {
            assert!(result.is_err(), "non-boundary cut {cut} accepted");
        }
    }
}

/// Builds one valid delta on top of `base` existing nodes from raw spec
/// data: `new` fresh nodes and interactions derived over the combined id
/// space (quantity code 19 becomes `inf`).
fn build_delta(base: u32, new: u32, raw: &[(u8, i64, u32)]) -> GraphDelta {
    let nodes = (0..new)
        .map(|i| Node {
            name: format!("node {base} #{i}"),
        })
        .collect();
    let total = base + new;
    let interactions = raw
        .iter()
        .filter_map(|&(pair, t, q)| {
            if total < 2 {
                return None;
            }
            let s = pair as u32 % total;
            let d = (s + 1 + (pair as u32 / 7) % (total - 1)) % total;
            let q = if q == 19 { f64::INFINITY } else { q as f64 };
            Some((NodeId(s), NodeId(d), Interaction::new(t, q)))
        })
        .collect();
    GraphDelta::new(base as usize, nodes, interactions).unwrap()
}

/// A random sequence of stacking deltas (each delta's base is the node
/// count left by its predecessors), generated as raw spec data and folded
/// into deltas in one map — the shim's `FlatMap` cannot chain a `Vec` of
/// strategies.
fn delta_sequence() -> impl Strategy<Value = Vec<GraphDelta>> {
    proptest::collection::vec(
        (
            1u32..4,
            proptest::collection::vec((any::<u8>(), 0i64..50, 0u32..20), 0..5),
        ),
        1..5,
    )
    .prop_map(|specs| {
        let mut base = 0u32;
        let mut deltas = Vec::with_capacity(specs.len());
        for (new, raw) in specs {
            deltas.push(build_delta(base, new, &raw));
            base += new;
        }
        deltas
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Random segments, random cut offsets: the truncation contract holds.
    #[test]
    fn truncation_contract_holds_for_random_segments(
        deltas in delta_sequence(),
        cut_frac in 0u32..=1000,
    ) {
        let (bytes, boundaries) = build_segment(&deltas);
        let cut = (bytes.len() as u64 * cut_frac as u64 / 1000) as usize;
        assert_truncation_contract(&bytes, &boundaries, &deltas, cut);
        // And the two edges of the file, always.
        assert_truncation_contract(&bytes, &boundaries, &deltas, 0);
        assert_truncation_contract(&bytes, &boundaries, &deltas, bytes.len());
    }

    /// Encode→frame→scan round-trips every random delta bit-exactly.
    #[test]
    fn random_segment_roundtrip(deltas in delta_sequence()) {
        let (bytes, _) = build_segment(&deltas);
        let scan = scan_segment(&bytes, 0, false, "seg").unwrap();
        prop_assert_eq!(scan.frames as usize, deltas.len());
        for (i, (got, _)) in scan.deltas.iter().enumerate() {
            prop_assert_eq!(got, &deltas[i]);
        }
    }
}
