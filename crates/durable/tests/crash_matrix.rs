//! The crash matrix: kill the process at every phase of the durability
//! protocol — mid-frame, mid-snapshot, pre-manifest-rename, post-rename,
//! and with a corrupted snapshot — and assert that recovery reaches a state
//! row-identical to an uninterrupted run over the durable prefix, then
//! keeps working (appends continue, a second kill recovers again).
//!
//! Crashes are simulated two ways: journal tails are torn by replaying the
//! clean segment bytes through a [`FailpointWriter`] with a `TruncateAt`
//! failpoint (the writer reports success while dropping the tail, exactly
//! like a kill after the syscall returned), and snapshot-phase crashes are
//! staged by leaving the directory in the exact file state a kill at that
//! phase produces (orphan `.tmp`, snapshot without manifest, ...).

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use tin_durable::{
    DurableStore, Failpoint, FailpointWriter, Journal, JournalConfig, Recovery, RecoverySource,
};
use tin_graph::{GraphDelta, Interaction, Node, NodeId, TemporalGraph};
use tin_patterns::{PathTables, TablesConfig};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tin-crashmatrix-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Delta `i`: one new node, and for `i > 0` an interaction into it plus a
/// back-edge every third step so cycles (hence L2/L3 rows) exist.
fn delta(i: u32) -> GraphDelta {
    let nodes = vec![Node {
        name: format!("v{i}"),
    }];
    let mut interactions = Vec::new();
    if i > 0 {
        interactions.push((NodeId(i - 1), NodeId(i), Interaction::new(i as i64, 5.0)));
        if i % 3 == 0 {
            interactions.push((
                NodeId(i),
                NodeId(i - 1),
                Interaction::new(i as i64 + 1, 2.0),
            ));
        }
    }
    GraphDelta::new(i as usize, nodes, interactions).unwrap()
}

/// The state an uninterrupted run reaches after deltas `0..n`.
fn reference(n: u32) -> (TemporalGraph, PathTables) {
    let config = TablesConfig::default();
    let mut g = TemporalGraph::new();
    let mut t = PathTables::build(&g, &config);
    for i in 0..n {
        let applied = g.apply(&delta(i)).unwrap();
        t.apply(&g, &applied);
    }
    (g, t)
}

/// Asserts the recovered store is row-identical to an uninterrupted run of
/// `n` deltas, then appends the rest up to `total`, reopens once more, and
/// checks row-identity again — recovery must leave a store that *keeps*
/// being durable, not just one that starts correct.
fn assert_recovers_then_continues(dir: &Path, n: u32, total: u32) {
    let config = TablesConfig::default();
    let (mut store, report) = DurableStore::open(dir, config, JournalConfig::default()).unwrap();
    assert_eq!(store.frames(), n as u64, "durable prefix length");
    assert_eq!(report.frames, n as u64);
    let (g, t) = reference(n);
    assert_eq!(*store.graph(), g, "graph after recovery of {n} deltas");
    assert_eq!(
        t.first_row_divergence(store.tables()),
        None,
        "tables after recovery of {n} deltas"
    );
    for i in n..total {
        store.apply(&delta(i)).unwrap();
    }
    drop(store);
    let (store, _) = DurableStore::open(dir, config, JournalConfig::default()).unwrap();
    let (g, t) = reference(total);
    assert_eq!(*store.graph(), g, "graph after continuing to {total}");
    assert_eq!(t.first_row_divergence(store.tables()), None);
}

/// Journals deltas `0..n` into `dir` through a real store.
fn populate(dir: &Path, n: u32) {
    let (mut store, _) =
        DurableStore::open(dir, TablesConfig::default(), JournalConfig::default()).unwrap();
    for i in 0..n {
        store.apply(&delta(i)).unwrap();
    }
}

/// Kill mid-frame: replay the clean segment through a `FailpointWriter`
/// truncating inside the last frame, at several depths including 1 byte in
/// (header barely started) and 1 byte short (payload almost complete).
#[test]
fn kill_mid_frame_recovers_complete_prefix() {
    let base = temp_dir("midframe-base");
    populate(&base, 8);
    let seg_name = "journal-000000.wal";
    let clean = fs::read(base.join(seg_name)).unwrap();
    // Byte length of the durable prefix holding exactly 7 frames: scan the
    // clean segment and take the 7th frame's end.
    let scan = tin_durable::frame::scan_segment(&clean, 0, true, seg_name).unwrap();
    assert_eq!(scan.frames, 8);
    let prefix_7 = scan.deltas[6].1;
    for cut in [prefix_7 + 1, prefix_7 + 8, clean.len() as u64 - 1] {
        let dir = temp_dir(&format!("midframe-{cut}"));
        fs::create_dir_all(&dir).unwrap();
        let mut w = FailpointWriter::new(
            fs::File::create(dir.join(seg_name)).unwrap(),
            Failpoint::TruncateAt(cut),
        );
        w.write_all(&clean).unwrap();
        w.into_inner().sync_all().unwrap();
        assert_recovers_then_continues(&dir, 7, 10);
        fs::remove_dir_all(&dir).unwrap();
    }
    fs::remove_dir_all(&base).unwrap();
}

/// Kill mid-snapshot: the `.tmp` snapshot file exists (partial), no `.snap`,
/// no manifest. Recovery must ignore it entirely and fully replay.
#[test]
fn kill_mid_snapshot_leaves_orphan_tmp_invisible() {
    let dir = temp_dir("midsnap");
    populate(&dir, 6);
    // A snapshot write that died halfway through the tmp file.
    fs::write(dir.join("snapshot-000000.tmp"), b"TINSNAP1 partial garbage").unwrap();
    let rec = Recovery::new(&dir, TablesConfig::default()).run().unwrap();
    assert_eq!(rec.report.source, RecoverySource::FullReplay);
    assert!(rec.report.discarded.is_empty());
    assert_recovers_then_continues(&dir, 6, 9);
    fs::remove_dir_all(&dir).unwrap();
}

/// Kill pre-manifest-rename: the snapshot renamed into place, the manifest
/// only made it to `.tmp`. The commit point is the manifest rename, so the
/// snapshot must be invisible.
#[test]
fn kill_before_manifest_rename_is_not_committed() {
    let dir = temp_dir("premanifest");
    {
        let (mut store, _) =
            DurableStore::open(&dir, TablesConfig::default(), JournalConfig::default()).unwrap();
        for i in 0..6 {
            store.apply(&delta(i)).unwrap();
            if i == 3 {
                store.snapshot().unwrap();
            }
        }
    }
    // Un-commit the manifest: back to its pre-rename tmp name.
    fs::rename(
        dir.join("manifest-000000.mf"),
        dir.join("manifest-000000.tmp"),
    )
    .unwrap();
    let rec = Recovery::new(&dir, TablesConfig::default()).run().unwrap();
    assert_eq!(rec.report.source, RecoverySource::FullReplay);
    assert_recovers_then_continues(&dir, 6, 9);
    fs::remove_dir_all(&dir).unwrap();
}

/// Kill post-rename, then again mid-frame: the committed snapshot is used,
/// the torn tail after it is dropped, and the tail before it is replayed.
#[test]
fn kill_after_commit_uses_snapshot_and_drops_torn_tail() {
    let dir = temp_dir("postrename");
    {
        let (mut store, _) =
            DurableStore::open(&dir, TablesConfig::default(), JournalConfig::default()).unwrap();
        for i in 0..9 {
            store.apply(&delta(i)).unwrap();
            if i == 4 {
                store.snapshot().unwrap();
            }
        }
    }
    // Tear the last frame (kill mid-append after the snapshot committed).
    let seg = dir.join("journal-000000.wal");
    let len = fs::metadata(&seg).unwrap().len();
    fs::File::options()
        .write(true)
        .open(&seg)
        .unwrap()
        .set_len(len - 5)
        .unwrap();
    let rec = Recovery::new(&dir, TablesConfig::default()).run().unwrap();
    assert!(matches!(rec.report.source, RecoverySource::Snapshot { .. }));
    assert_eq!(rec.report.frames, 8);
    assert_eq!(rec.report.replayed, 3);
    assert!(rec.report.torn_tail.is_some());
    assert_recovers_then_continues(&dir, 8, 12);
    fs::remove_dir_all(&dir).unwrap();
}

/// Bit rot in a committed snapshot: recovery discards it with a reason and
/// falls back — to an older snapshot if one exists, else full replay —
/// still reaching the row-identical state.
#[test]
fn corrupt_snapshot_degrades_to_older_then_full_replay() {
    let dir = temp_dir("rot");
    {
        let (mut store, _) =
            DurableStore::open(&dir, TablesConfig::default(), JournalConfig::default()).unwrap();
        for i in 0..10 {
            store.apply(&delta(i)).unwrap();
            if i == 3 || i == 7 {
                store.snapshot().unwrap();
            }
        }
    }
    // Rot the newest snapshot: falls back to the older one.
    let newest = dir.join("snapshot-000001.snap");
    let mut bytes = fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    fs::write(&newest, &bytes).unwrap();
    let rec = Recovery::new(&dir, TablesConfig::default()).run().unwrap();
    match &rec.report.source {
        RecoverySource::Snapshot { snapshot, .. } => assert!(snapshot.contains("000000")),
        other => panic!("expected older snapshot, got {other:?}"),
    }
    assert_eq!(rec.report.discarded.len(), 1);
    // Rot the older one too: full replay, two discards, same state.
    let older = dir.join("snapshot-000000.snap");
    let mut bytes = fs::read(&older).unwrap();
    bytes[10] ^= 0x01;
    fs::write(&older, &bytes).unwrap();
    let rec = Recovery::new(&dir, TablesConfig::default()).run().unwrap();
    assert_eq!(rec.report.source, RecoverySource::FullReplay);
    assert_eq!(rec.report.discarded.len(), 2);
    assert_recovers_then_continues(&dir, 10, 13);
    fs::remove_dir_all(&dir).unwrap();
}

/// Mid-journal corruption (not at the tail) must NOT be silently skipped:
/// recovery fails with the exact file, frame, and byte offset.
#[test]
fn mid_journal_corruption_fails_with_position() {
    let dir = temp_dir("midjournal");
    populate(&dir, 8);
    let seg = dir.join("journal-000000.wal");
    let clean = fs::read(&seg).unwrap();
    let scan = tin_durable::frame::scan_segment(&clean, 0, true, "journal-000000.wal").unwrap();
    // Flip a byte inside the 3rd frame's payload.
    let third_start = scan.deltas[1].1;
    let mut rotted = clean.clone();
    rotted[third_start as usize + 9] ^= 0x08;
    fs::write(&seg, &rotted).unwrap();
    let err = Recovery::new(&dir, TablesConfig::default())
        .run()
        .unwrap_err();
    match err {
        tin_durable::DurabilityError::CorruptFrame {
            file,
            frame,
            offset,
            ..
        } => {
            assert_eq!(file, "journal-000000.wal");
            assert_eq!(frame, 2);
            assert_eq!(offset, third_start);
        }
        other => panic!("expected CorruptFrame, got {other}"),
    }
    fs::remove_dir_all(&dir).unwrap();
}

/// The matrix also holds across a segment rotation: kill mid-frame in the
/// second segment, with a snapshot committed in the first.
#[test]
fn kill_mid_frame_after_rotation_recovers() {
    let dir = temp_dir("rotation");
    let config = JournalConfig {
        segment_max_bytes: 256, // force rotations
        sync_every: 1,
        ..JournalConfig::default()
    };
    {
        let (mut store, _) = DurableStore::open(&dir, TablesConfig::default(), config).unwrap();
        for i in 0..12 {
            store.apply(&delta(i)).unwrap();
            if i == 5 {
                store.snapshot().unwrap();
            }
        }
        assert!(store.position().segment >= 1, "rotation did not happen");
    }
    // Tear the final segment's last frame.
    let last_seg = tin_durable::journal::list_segments(&dir)
        .unwrap()
        .into_iter()
        .next_back()
        .unwrap()
        .1;
    let len = fs::metadata(&last_seg).unwrap().len();
    fs::File::options()
        .write(true)
        .open(&last_seg)
        .unwrap()
        .set_len(len - 2)
        .unwrap();
    let (store, report) = DurableStore::open(&dir, TablesConfig::default(), config).unwrap();
    assert_eq!(store.frames(), 11);
    assert!(matches!(report.source, RecoverySource::Snapshot { .. }));
    let (g, t) = reference(11);
    assert_eq!(*store.graph(), g);
    assert_eq!(t.first_row_divergence(store.tables()), None);
    drop(store);
    // Journal keeps the custom segment size for the continuation run.
    let (mut store, _) = DurableStore::open(&dir, TablesConfig::default(), config).unwrap();
    for i in 11..14 {
        store.apply(&delta(i)).unwrap();
    }
    drop(store);
    let (store, _) = DurableStore::open(&dir, TablesConfig::default(), config).unwrap();
    let (g, t) = reference(14);
    assert_eq!(*store.graph(), g);
    assert_eq!(t.first_row_divergence(store.tables()), None);
    fs::remove_dir_all(&dir).unwrap();
}

/// A windowed (expiring) stream — tombstones and a moving frontier — also
/// survives the kill: expiry frontiers ride in the journal frames.
#[test]
fn kill_with_expiring_window_preserves_frontier() {
    let dir = temp_dir("window");
    {
        let (mut store, _) =
            DurableStore::open(&dir, TablesConfig::default(), JournalConfig::default()).unwrap();
        for i in 0..8 {
            let d = delta(i);
            let d = if i >= 5 {
                d.expire_before(i as i64 - 4)
            } else {
                d
            };
            store.apply(&d).unwrap();
        }
        assert!(store.graph().frontier().is_some());
    }
    let seg = dir.join("journal-000000.wal");
    let len = fs::metadata(&seg).unwrap().len();
    fs::File::options()
        .write(true)
        .open(&seg)
        .unwrap()
        .set_len(len - 4)
        .unwrap();
    let (store, _) =
        DurableStore::open(&dir, TablesConfig::default(), JournalConfig::default()).unwrap();
    assert_eq!(store.frames(), 7);
    // Reference: the same deltas (with the same expiries) applied directly.
    let mut g = TemporalGraph::new();
    let mut t = PathTables::build(&g, &TablesConfig::default());
    for i in 0..7 {
        let d = delta(i);
        let d = if i >= 5 {
            d.expire_before(i as i64 - 4)
        } else {
            d
        };
        let applied = g.apply(&d).unwrap();
        t.apply(&g, &applied);
    }
    assert_eq!(*store.graph(), g);
    assert_eq!(store.graph().frontier(), g.frontier());
    assert_eq!(t.first_row_divergence(store.tables()), None);
    fs::remove_dir_all(&dir).unwrap();
}

/// Group commit crash contract, across group sizes: with `sync_every = g`,
/// a kill after `k` appends loses **at most the last uncommitted group** —
/// the durable prefix holds the `floor(k / g) * g` frames whose group
/// boundaries fsynced, and recovery replays exactly those, then keeps
/// accepting appends.
#[test]
fn group_commit_kill_loses_at_most_last_group() {
    for (group, appends) in [(2u32, 7u32), (4, 10), (8, 8), (8, 5)] {
        let dir = temp_dir(&format!("groupkill-{group}-{appends}"));
        let config = JournalConfig::group_commit(group);
        let mut j = Journal::open(&dir, config).unwrap();
        for i in 0..appends {
            j.append(&delta(i)).unwrap();
        }
        let committed = (appends / group) * group;
        let durable = j.durable_position();
        if appends % group == 0 {
            assert_eq!(durable, j.position(), "g={group} k={appends}");
        } else {
            assert!(durable < j.position(), "g={group} k={appends}");
        }
        // Simulate the kill: skip the Drop flush, then drop everything past
        // the last fsync (the open group rides only in the page cache and
        // a power cut takes it).
        std::mem::forget(j);
        let seg = tin_durable::journal::segment_path(&dir, durable.segment);
        fs::File::options()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(durable.offset)
            .unwrap();
        let replay =
            tin_durable::journal::replay_from(&dir, tin_durable::JournalPos::start()).unwrap();
        assert_eq!(
            replay.deltas.len(),
            committed as usize,
            "g={group} k={appends}: exactly the committed groups survive"
        );
        assert!(replay.torn.is_none());
        for (i, (d, _)) in replay.deltas.iter().enumerate() {
            assert_eq!(d, &delta(i as u32), "g={group} k={appends}");
        }
        // Recovery leaves a journal that keeps working.
        let mut j = Journal::open(&dir, config).unwrap();
        assert_eq!(j.position(), durable);
        j.append(&delta(committed)).unwrap();
        j.sync().unwrap();
        let replay =
            tin_durable::journal::replay_from(&dir, tin_durable::JournalPos::start()).unwrap();
        assert_eq!(replay.deltas.len(), committed as usize + 1);
        fs::remove_dir_all(&dir).unwrap();
    }
}

/// Group commit clean-shutdown contract: dropping the journal flushes the
/// open group, so a shutdown between group boundaries loses nothing — the
/// full append sequence replays.
#[test]
fn group_commit_clean_shutdown_loses_nothing() {
    let dir = temp_dir("groupclean");
    let mut j = Journal::open(&dir, JournalConfig::group_commit(4)).unwrap();
    for i in 0..10 {
        j.append(&delta(i)).unwrap();
    }
    // Two frames sit in the open (uncommitted) group...
    assert!(j.durable_position() < j.position());
    let end = j.position();
    // ...and the drop commits them.
    drop(j);
    let replay = tin_durable::journal::replay_from(&dir, tin_durable::JournalPos::start()).unwrap();
    assert_eq!(replay.deltas.len(), 10);
    assert_eq!(replay.end, end);
    // A reopen sees the whole sequence as the durable prefix.
    let j = Journal::open(&dir, JournalConfig::group_commit(4)).unwrap();
    assert_eq!(j.position(), end);
    assert_eq!(j.durable_position(), end);
    fs::remove_dir_all(&dir).unwrap();
}

/// Belt-and-braces: the journal alone (no store) also tolerates a
/// `FailpointWriter`-torn copy of a multi-frame segment at any of the
/// sampled depths.
#[test]
fn journal_reopen_after_failpoint_torn_copy() {
    let base = temp_dir("jr-base");
    populate(&base, 5);
    let clean = fs::read(base.join("journal-000000.wal")).unwrap();
    for frac in [3, 5, 7] {
        let cut = (clean.len() * frac / 8) as u64;
        let dir = temp_dir(&format!("jr-{frac}"));
        fs::create_dir_all(&dir).unwrap();
        let mut w = FailpointWriter::new(
            fs::File::create(dir.join("journal-000000.wal")).unwrap(),
            Failpoint::TruncateAt(cut),
        );
        w.write_all(&clean).unwrap();
        w.into_inner().sync_all().unwrap();
        // Journal::open must truncate to a frame boundary and then accept
        // appends; replay must agree with what open kept.
        let mut journal = Journal::open(&dir, JournalConfig::default()).unwrap();
        let kept =
            tin_durable::journal::replay_from(&dir, tin_durable::JournalPos::start()).unwrap();
        assert!(kept.torn.is_none(), "open left a torn tail behind");
        assert_eq!(journal.position(), kept.end);
        journal.append(&delta(kept.deltas.len() as u32)).unwrap();
        journal.sync().unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }
    fs::remove_dir_all(&base).unwrap();
}
