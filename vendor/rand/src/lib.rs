//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the handful of external dependencies are vendored as minimal shims that
//! provide exactly the API subset the workspace uses (see `vendor/README.md`).
//!
//! This shim implements `StdRng`, `SeedableRng::seed_from_u64`, and the
//! `Rng::{gen_range, gen_bool}` methods over integer and float ranges. The
//! generator is xoshiro256++ seeded through SplitMix64 — a different stream
//! than upstream `rand`'s ChaCha-based `StdRng`, but the workspace only
//! relies on determinism-given-seed and reasonable statistical quality, not
//! on upstream's exact value sequence.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Random number generators (mirrors `rand::rngs`).
pub mod rngs {
    /// A deterministic, seedable pseudo-random number generator
    /// (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: [u64; 4],
    }
}

pub use rngs::StdRng;

/// A random number generator core: a source of uniformly distributed bits.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A seedable random number generator (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ by Blackman & Vigna (public domain reference code).
        let [s0, s1, s2, s3] = self.state;
        let result = (s0.wrapping_add(s3)).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed, as recommended by the xoshiro
        // authors (and used by upstream rand for `seed_from_u64`).
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        StdRng {
            state: [next(), next(), next(), next()],
        }
    }
}

/// A range that can be sampled uniformly (mirrors `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.abs_diff(self.start);
                self.start.wrapping_add(uniform_u64(rng, span as u64) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                let span = end.abs_diff(start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Uniform draw from `[0, bound)` (`bound == 0` means the full 64-bit range)
/// using Lemire-style rejection to avoid modulo bias.
fn uniform_u64(rng: &mut dyn RngCore, bound: u64) -> u64 {
    if bound == 0 {
        return rng.next_u64();
    }
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let (hi, lo) = widening_mul(x, bound);
        if lo >= threshold {
            return hi;
        }
    }
}

fn widening_mul(a: u64, b: u64) -> (u64, u64) {
    let wide = (a as u128) * (b as u128);
    ((wide >> 64) as u64, wide as u64)
}

/// Convenience methods on random number generators (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0, 1]"
        );
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17i64);
            assert!((3..17).contains(&v));
            let u = rng.gen_range(0..5usize);
            assert!(u < 5);
            let f = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let inc = rng.gen_range(2..=4u32);
            assert!((2..=4).contains(&inc));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits {hits}");
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn uniform_covers_small_ranges() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
