//! Offline stand-in for the [`serde_json`](https://crates.io/crates/serde_json)
//! crate: a JSON writer/parser over the vendored `serde` shim's `Value`
//! tree, exposing the `to_string` / `from_str` entry points and an `Error`
//! with a `line()` accessor (the subset this workspace uses).

#![forbid(unsafe_code)]

use serde::{DeError, Deserialize, Serialize, Value};

/// A JSON serialization or parse error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
    line: usize,
}

impl Error {
    /// The 1-based input line on which a parse error occurred (0 when the
    /// error did not originate from parsing, e.g. a type mismatch while
    /// mapping onto a Rust type).
    pub fn line(&self) -> usize {
        self.line
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(f, "{} at line {}", self.message, self.line)
        } else {
            f.write_str(&self.message)
        }
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error {
            message: e.message,
            line: 0,
        }
    }
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Deserializes a `T` from a JSON string.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        line: 1,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    T::from_value(&value).map_err(Error::from)
}

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` keeps a fractional part (`1.0` not `1`), so floats
                // re-parse as floats; it also round-trips f64 exactly.
                out.push_str(&format!("{f:?}"));
            } else {
                // Upstream serde_json behavior for non-finite floats.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
            line: self.line,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        match self.bump() {
            Some(b) if b == byte => Ok(()),
            Some(b) => Err(self.error(format!(
                "expected `{}`, found `{}`",
                byte as char, b as char
            ))),
            None => Err(self.error(format!("expected `{}`, found end of input", byte as char))),
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(self.error("unexpected end of input")),
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(b) => Err(self.error(format!("unexpected character `{}`", b as char))),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Value) -> Result<Value, Error> {
        for expected in keyword.bytes() {
            match self.bump() {
                Some(b) if b == expected => {}
                _ => return Err(self.error(format!("invalid literal, expected `{keyword}`"))),
            }
        }
        Ok(value)
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.bump();
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(fields)),
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.bump();
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let digit = self
                                .bump()
                                .and_then(|b| (b as char).to_digit(16))
                                .ok_or_else(|| self.error("invalid \\u escape"))?;
                            code = code * 16 + digit;
                        }
                        // Surrogate pairs are not produced by the writer;
                        // reject them rather than decode them incorrectly.
                        let c = char::from_u32(code)
                            .ok_or_else(|| self.error("invalid \\u escape (surrogate)"))?;
                        out.push(c);
                    }
                    _ => return Err(self.error("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => return Err(self.error("control character in string")),
                Some(b) => {
                    // Re-assemble multi-byte UTF-8 sequences: the input is a
                    // &str, so the bytes are guaranteed valid UTF-8.
                    let len = utf8_len(b);
                    let start = self.pos - 1;
                    for _ in 1..len {
                        self.bump();
                    }
                    let slice = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    out.push_str(slice);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.bump();
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => {
                    self.bump();
                }
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.bump();
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number slice is ASCII");
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.error(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.error(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| self.error(format!("invalid number `{text}`")))
        }
    }
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars_and_containers() {
        let v = vec![(1usize, 2.5f64), (3, 4.0)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,2.5],[3,4.0]]");
        let back: Vec<(usize, f64)> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = to_string(&"a\"b\\c\nd\té€".to_string()).unwrap();
        let back: String = from_str(&s).unwrap();
        assert_eq!(back, "a\"b\\c\nd\té€");
    }

    #[test]
    fn parse_error_reports_line() {
        let err = from_str::<Vec<u32>>("[1,\n2,\nbroken]").unwrap_err();
        assert_eq!(err.line(), 3);
        assert!(err.to_string().contains("line 3"));
    }

    #[test]
    fn not_json_is_an_error() {
        assert!(from_str::<String>("not json").is_err());
        assert!(from_str::<u32>("1 trailing").is_err());
    }

    #[test]
    fn large_u64_roundtrips_exactly() {
        let seed: u64 = u64::MAX - 3;
        let back: u64 = from_str(&to_string(&seed).unwrap()).unwrap();
        assert_eq!(back, seed);
    }

    #[test]
    fn floats_keep_fractional_form() {
        let s = to_string(&1.0f64).unwrap();
        assert_eq!(s, "1.0");
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back, 1.0);
    }
}
