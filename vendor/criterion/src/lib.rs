//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Provides the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group` with `sample_size` / `measurement_time` /
//! `warm_up_time` / `throughput`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros — backed by a plain wall-clock measurement loop
//! instead of criterion's statistical machinery. Reported numbers are
//! mean / min / max over the collected samples (plus a mean-based rate when
//! a throughput is set); good enough to compare the workspace's algorithm
//! variants, not a replacement for real criterion runs.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver handed to every registered benchmark function.
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
    default_warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
            default_measurement_time: Duration::from_secs(2),
            default_warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            measurement_time: self.default_measurement_time,
            warm_up_time: self.default_warm_up_time,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let (sample_size, measurement_time, warm_up_time) = (
            self.default_sample_size,
            self.default_measurement_time,
            self.default_warm_up_time,
        );
        run_benchmark(
            &id.into().label,
            sample_size,
            measurement_time,
            warm_up_time,
            None,
            f,
        );
    }
}

/// Amount of work one benchmark iteration performs; when set on a group,
/// reported timings gain a derived rate (elements or bytes per second).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iterations process this many logical elements (rows, items...).
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples to collect.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Bounds the total time spent measuring one benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up time before measurement starts.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Declares how much work one iteration of the subsequently registered
    /// benchmarks performs; their reports then include a derived rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Measures a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(
            &label,
            self.sample_size,
            self.measurement_time,
            self.warm_up_time,
            self.throughput,
            f,
        );
    }

    /// Measures a closure parameterized by an input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Finishes the group (upstream criterion renders summaries here; the
    /// shim prints per-benchmark lines eagerly, so this is a no-op).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and an input description.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// An id made of an input description only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Bencher {
    /// Times `payload`, collecting up to `sample_size` samples but never
    /// exceeding the configured measurement time (after one mandatory
    /// sample).
    pub fn iter<O, P: FnMut() -> O>(&mut self, mut payload: P) {
        let warm_up_deadline = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_up_deadline {
            black_box(payload());
        }
        let measurement_deadline = Instant::now() + self.measurement_time;
        for i in 0..self.sample_size {
            let start = Instant::now();
            black_box(payload());
            self.samples.push(start.elapsed());
            if i > 0 && Instant::now() >= measurement_deadline {
                break;
            }
        }
    }
}

/// Human-readable `value/second` with unit scaling, e.g. `12.3 Kelem/s`.
fn format_rate(per_second: f64, unit: &str) -> String {
    let scaled = [(1e9, "G"), (1e6, "M"), (1e3, "K")]
        .iter()
        .find(|(scale, _)| per_second >= *scale)
        .map(|(scale, prefix)| (per_second / scale, *prefix))
        .unwrap_or((per_second, ""));
    format!("{:.1} {}{unit}/s", scaled.0, scaled.1)
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
        measurement_time,
        warm_up_time,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<60} (no samples collected)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().expect("non-empty");
    let max = bencher.samples.iter().max().expect("non-empty");
    let rate = throughput
        .map(|t| {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            let per_second = count as f64 / mean.as_secs_f64().max(1e-12);
            format!("   thrpt {:>14}", format_rate(per_second, unit))
        })
        .unwrap_or_default();
    println!(
        "{label:<60} mean {mean:>12?}   min {min:>12?}   max {max:>12?}{rate}   ({} samples)",
        bencher.samples.len()
    );
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples_and_respects_sample_size() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(5)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(1));
        let mut ran = 0usize;
        group.bench_function("counting", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        group.finish();
        assert!(
            ran >= 5,
            "payload should run at least sample_size times, ran {ran}"
        );
    }

    #[test]
    fn format_rate_scales_units() {
        assert_eq!(format_rate(12.0, "elem"), "12.0 elem/s");
        assert_eq!(format_rate(12_300.0, "elem"), "12.3 Kelem/s");
        assert_eq!(format_rate(2.5e6, "B"), "2.5 MB/s");
        assert_eq!(format_rate(7.2e9, "elem"), "7.2 Gelem/s");
    }

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("method", "small").label, "method/small");
        assert_eq!(BenchmarkId::from_parameter(42).label, "42");
    }
}
