//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the vendored `serde` shim's `to_value`/`from_value` traits. Because no
//! external proc-macro helpers (`syn`, `quote`) are available offline, the
//! input item is parsed directly from its token tree and the generated impl
//! is assembled as a source string.
//!
//! Supported shapes — exactly what this workspace derives on:
//!
//! * structs with named fields (serialized as JSON objects), honouring
//!   `#[serde(skip)]` (field omitted on serialize, `Default` on deserialize);
//! * single-field tuple structs (serialized transparently, like upstream
//!   newtype structs);
//! * enums whose variants are all unit variants (serialized as the variant
//!   name string, upstream's "externally tagged" unit representation).
//!
//! Anything else (generics, data-carrying enum variants, unions) produces a
//! `compile_error!` naming the unsupported construct.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

/// Derives the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse_item(input).and_then(|item| generate(&item, mode)) {
        Ok(src) => src.parse().expect("generated impl must be valid Rust"),
        Err(message) => format!("compile_error!({message:?});").parse().unwrap(),
    }
}

struct Field {
    name: String,
    skip: bool,
}

enum Item {
    NamedStruct { name: String, fields: Vec<Field> },
    NewtypeStruct { name: String },
    UnitEnum { name: String, variants: Vec<String> },
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility ahead of `struct` / `enum`.
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" || id.to_string() == "enum" => {
            i += 1;
            tokens[i - 1].to_string()
        }
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => {
            i += 1;
            id.to_string()
        }
        other => return Err(format!("expected type name, found {other:?}")),
    };
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "cannot derive serde traits for generic type `{name}`"
        ));
    }

    match tokens.get(i) {
        Some(TokenTree::Group(body)) if body.delimiter() == Delimiter::Brace => {
            if keyword == "struct" {
                Ok(Item::NamedStruct {
                    name,
                    fields: parse_named_fields(body.stream())?,
                })
            } else {
                Ok(Item::UnitEnum {
                    name,
                    variants: parse_unit_variants(body.stream())?,
                })
            }
        }
        Some(TokenTree::Group(body)) if body.delimiter() == Delimiter::Parenthesis => {
            if keyword != "struct" {
                return Err(format!("unsupported shape for `{name}`"));
            }
            let arity = count_top_level_fields(body.stream());
            if arity != 1 {
                return Err(format!(
                    "tuple struct `{name}` has {arity} fields; only single-field newtype structs are supported"
                ));
            }
            Ok(Item::NewtypeStruct { name })
        }
        other => Err(format!("unsupported item body for `{name}`: {other:?}")),
    }
}

/// Advances past any `#[...]` attribute groups, reporting whether one of
/// them was `#[serde(skip)]`.
fn take_attributes(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut skip = false;
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(attr)) = tokens.get(*i + 1) {
            if is_serde_skip(attr.stream()) {
                skip = true;
            }
            *i += 2;
        } else {
            break;
        }
    }
    skip
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    take_attributes(tokens, i);
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn is_serde_skip(attr: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = attr.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args)))
            if name.to_string() == "serde" =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "skip"))
        }
        _ => false,
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let skip = take_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => {
                i += 1;
                id.to_string()
            }
            other => return Err(format!("expected field name, found {other:?}")),
        };
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        // Consume the type: everything up to the next comma outside angle
        // brackets. `<` / `>` arrive as individual `Punct`s even when part
        // of `>>`, so a simple depth counter is enough for the types used
        // here (no function-pointer or associated-type paths).
        let mut angle_depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        fields.push(Field { name, skip });
    }
    Ok(fields)
}

fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => {
                i += 1;
                id.to_string()
            }
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        match tokens.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "variant `{name}` carries data; only unit variants are supported"
                ))
            }
            other => {
                return Err(format!(
                    "unexpected token after variant `{name}`: {other:?}"
                ))
            }
        }
        variants.push(name);
    }
    Ok(variants)
}

fn count_top_level_fields(body: TokenStream) -> usize {
    let mut angle_depth = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    let mut trailing_comma = false;
    for tok in body {
        any = true;
        trailing_comma = false;
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    commas += 1;
                    trailing_comma = true;
                }
                _ => {}
            }
        }
    }
    if !any {
        0
    } else if trailing_comma {
        commas
    } else {
        commas + 1
    }
}

fn generate(item: &Item, mode: Mode) -> Result<String, String> {
    Ok(match (item, mode) {
        (Item::NamedStruct { name, fields }, Mode::Serialize) => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "fields.push((\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})));\n",
                    f = f.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(fields)\n\
                     }}\n\
                 }}"
            )
        }
        (Item::NamedStruct { name, fields }, Mode::Deserialize) => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!(
                        "{f}: ::core::default::Default::default(),\n",
                        f = f.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{f}: ::serde::Deserialize::from_value(value.get(\"{f}\").ok_or_else(|| ::serde::DeError::new(\"missing field `{f}` in {name}\"))?)?,\n",
                        f = f.name
                    ));
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         if !matches!(value, ::serde::Value::Object(_)) {{\n\
                             return ::std::result::Result::Err(::serde::DeError::new(\"expected object for {name}\"));\n\
                         }}\n\
                         ::std::result::Result::Ok({name} {{\n\
                             {inits}\
                         }})\n\
                     }}\n\
                 }}"
            )
        }
        (Item::NewtypeStruct { name }, Mode::Serialize) => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        (Item::NewtypeStruct { name }, Mode::Deserialize) => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))\n\
                 }}\n\
             }}"
        ),
        (Item::UnitEnum { name, variants }, Mode::Serialize) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),\n"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
        (Item::UnitEnum { name, variants }, Mode::Deserialize) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n")
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match value {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {arms}\
                                 other => ::std::result::Result::Err(::serde::DeError::new(format!(\"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             _ => ::std::result::Result::Err(::serde::DeError::new(\"expected string for {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    })
}
