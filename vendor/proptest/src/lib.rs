//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`Strategy`](strategy::Strategy) trait with `prop_map` / `prop_flat_map`,
//! range and tuple strategies, `any::<T>()`, `collection::vec`, the
//! [`proptest!`] macro with `#![proptest_config(...)]`, and the
//! `prop_assert*` macros.
//!
//! Differences from upstream: inputs are generated from a fixed-seed
//! deterministic generator (so failures reproduce across runs), and there
//! is **no shrinking** — a failing case is reported at its generated size.

#![forbid(unsafe_code)]

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }

        /// Feeds generated values into `f` to obtain a dependent strategy,
        /// then samples from it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { base: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.abs_diff(self.start) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = end.abs_diff(start) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
    }

    /// Types with a canonical "any value" strategy (subset of upstream's
    /// `Arbitrary`).
    pub trait Arbitrary: Sized {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec()`]: a fixed length or a range.
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.min == self.size.max {
                self.size.min
            } else {
                self.size.min + rng.below((self.size.max - self.size.min + 1) as u64) as usize
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// is described by `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Test-runner configuration and RNG.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    ///
    /// Only `cases` affects this shim; the other knobs are accepted for
    /// source compatibility with upstream configs (the shim never rejects
    /// inputs and does not shrink).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
        /// Accepted for upstream compatibility; unused (no input rejection).
        pub max_local_rejects: u32,
        /// Accepted for upstream compatibility; unused (no input rejection).
        pub max_global_rejects: u32,
        /// Accepted for upstream compatibility; unused (no shrinking).
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_local_rejects: 65_536,
                max_global_rejects: 1_024,
                max_shrink_iters: 4_096,
            }
        }
    }

    /// Deterministic generator driving all strategies (SplitMix64).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A fixed-seed generator, so every run exercises the same cases.
        pub fn deterministic() -> Self {
            TestRng {
                state: 0x5EED_1234_ABCD_9876,
            }
        }

        /// Next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`; `bound == 0` means all 64 bits.
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                return self.next_u64();
            }
            // Lemire multiply-shift with rejection.
            let threshold = bound.wrapping_neg() % bound;
            loop {
                let wide = (self.next_u64() as u128) * (bound as u128);
                if (wide as u64) >= threshold {
                    return (wide >> 64) as u64;
                }
            }
        }
    }
}

/// The commonly used exports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property (panics on failure, like a plain
/// `assert!`; upstream's error-propagation machinery is not reproduced).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Declares property tests: each `fn name(pattern in strategy, ...)` becomes
/// a `#[test]` that generates `cases` inputs and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic();
                for _case in 0..config.cases {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic();
        for _ in 0..1000 {
            let v = (3..=9usize).generate(&mut rng);
            assert!((3..=9).contains(&v));
            let w = (0..5i64).generate(&mut rng);
            assert!((0..5).contains(&w));
        }
    }

    #[test]
    fn combinators_compose() {
        let strat = (1..4usize).prop_flat_map(|n| {
            collection::vec((0..10u32, any::<bool>()), n).prop_map(move |v| (n, v))
        });
        let mut rng = TestRng::deterministic();
        for _ in 0..200 {
            let (n, v) = strat.generate(&mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&(x, _)| x < 10));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = collection::vec(any::<u64>(), 8usize);
        let a = strat.generate(&mut TestRng::deterministic());
        let b = strat.generate(&mut TestRng::deterministic());
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// The macro itself works end-to-end.
        #[test]
        fn macro_generates_and_runs(x in 0..100u32, pair in (0..10usize, any::<u64>())) {
            prop_assert!(x < 100);
            prop_assert!(pair.0 < 10);
        }
    }
}
