//! Offline stand-in for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the subset the workspace uses: `#[derive(Serialize, Deserialize)]` (with
//! `#[serde(skip)]`), wired to the JSON backend in the vendored `serde_json`.
//!
//! Instead of upstream serde's visitor architecture, the shim converts
//! through an owned [`Value`] tree (the only backend is JSON, so the extra
//! allocation does not matter for the fixture/tooling workloads it serves).
//! The derive macro targets these traits; user code is source-compatible for
//! the patterns exercised in this workspace.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// A dynamically typed serialization tree (JSON-shaped).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (JSON number without fraction/exponent, negative).
    Int(i64),
    /// Unsigned integer (JSON number without fraction/exponent).
    UInt(u64),
    /// Floating point number. Non-finite values serialize as `null`,
    /// matching upstream `serde_json`.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Error produced when a [`Value`] cannot be mapped onto a Rust type.
#[derive(Debug, Clone)]
pub struct DeError {
    /// Human-readable description of the mismatch.
    pub message: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    fn expected(what: &str, got: &Value) -> Self {
        DeError::new(format!("expected {what}, got {}", got.type_name()))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// A type that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let wide = match value {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    other => return Err(DeError::expected("unsigned integer", other)),
                };
                <$t>::try_from(wide).map_err(|_| {
                    DeError::new(format!("integer {wide} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let wide = match value {
                    Value::Int(i) => *i,
                    Value::UInt(u) => {
                        i64::try_from(*u).map_err(|_| DeError::new("integer out of i64 range"))?
                    }
                    other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(wide).map_err(|_| {
                    DeError::new(format!("integer {wide} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);
impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    // Upstream serde_json serializes non-finite floats as
                    // `null`; the only null-in-float-position this workspace
                    // produces is the infinite quantity of synthetic
                    // source/sink interactions, so map it back to infinity.
                    Value::Null => Ok(<$t>::INFINITY),
                    other => Err(DeError::expected("number", other)),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(Deserialize::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let expected_len = [$(stringify!($idx)),+].len();
                match value {
                    Value::Array(items) if items.len() == expected_len => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    Value::Array(items) => Err(DeError::new(format!(
                        "expected array of length {expected_len}, got length {}",
                        items.len()
                    ))),
                    other => Err(DeError::expected("array", other)),
                }
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
    }

    #[test]
    fn nonfinite_floats_deserialize_from_null() {
        // The JSON writer in `serde_json` emits `null` for non-finite
        // floats; the reverse mapping lives here.
        assert_eq!(f64::from_value(&Value::Null).unwrap(), f64::INFINITY);
    }

    #[test]
    fn vectors_and_tuples_roundtrip() {
        let v = vec![(1usize, 2usize), (3, 4)];
        let back: Vec<(usize, usize)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn out_of_range_integers_are_rejected() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
    }
}
