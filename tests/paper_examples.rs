//! Integration tests reproducing every worked example of the paper through
//! the public facade API.

use temporal_flow::prelude::*;
use tin_flow::{greedy_flow_traced, DifficultyClass};
use tin_graph::augment_with_synthetic_endpoints;

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9
}

/// Figure 1(a): the introduction's toy transaction network.
#[test]
fn figure1_greedy_two_maximum_five() {
    let mut b = GraphBuilder::new();
    let s = b.add_node("s");
    let x = b.add_node("x");
    let y = b.add_node("y");
    let z = b.add_node("z");
    let t = b.add_node("t");
    b.add_pairs(s, x, &[(1, 3.0), (7, 5.0)]).unwrap();
    b.add_pairs(s, y, &[(2, 6.0)]).unwrap();
    b.add_pairs(x, z, &[(5, 5.0)]).unwrap();
    b.add_pairs(y, z, &[(8, 5.0)]).unwrap();
    b.add_pairs(y, t, &[(9, 4.0)]).unwrap();
    b.add_pairs(z, t, &[(2, 3.0), (10, 1.0)]).unwrap();
    let g = b.build();

    assert!(close(greedy_flow(&g, s, t).flow, 2.0));
    for method in [
        FlowMethod::Lp,
        FlowMethod::Pre,
        FlowMethod::PreSim,
        FlowMethod::TimeExpanded,
    ] {
        assert!(
            close(compute_flow(&g, s, t, method).unwrap().flow, 5.0),
            "{method}"
        );
    }
}

/// Figure 3 with Table 2 (greedy) and Table 3 (maximum).
#[test]
fn figure3_tables_2_and_3() {
    let mut b = GraphBuilder::new();
    let s = b.add_node("s");
    let y = b.add_node("y");
    let z = b.add_node("z");
    let t = b.add_node("t");
    b.add_pairs(s, y, &[(1, 5.0)]).unwrap();
    b.add_pairs(s, z, &[(2, 3.0)]).unwrap();
    b.add_pairs(y, z, &[(3, 5.0)]).unwrap();
    b.add_pairs(y, t, &[(4, 4.0)]).unwrap();
    b.add_pairs(z, t, &[(5, 1.0)]).unwrap();
    let g = b.build();

    // Table 2: greedy transfers 5, 3, 5, 0, 1 and delivers 1 unit.
    let traced = greedy_flow_traced(&g, s, t);
    assert_eq!(
        traced
            .trace
            .iter()
            .map(|s| s.transferred)
            .collect::<Vec<_>>(),
        vec![5.0, 3.0, 5.0, 0.0, 1.0]
    );
    assert!(close(traced.flow, 1.0));

    // Table 3: the maximum flow is 5, and Figure 3 is a class C instance.
    let max = maximum_flow(&g, s, t).unwrap();
    assert!(close(max.flow, 5.0));
    assert_eq!(max.class, Some(DifficultyClass::C));
}

/// Figure 4: synthetic source/sink augmentation of a multi-endpoint DAG.
#[test]
fn figure4_synthetic_endpoints() {
    let mut b = GraphBuilder::new();
    let x = b.add_node("x");
    let y = b.add_node("y");
    let z = b.add_node("z");
    let w = b.add_node("w");
    b.add_pairs(x, z, &[(1, 5.0)]).unwrap();
    b.add_pairs(y, z, &[(2, 3.0)]).unwrap();
    b.add_pairs(y, w, &[(5, 1.0)]).unwrap();
    let g = b.build();

    let aug = augment_with_synthetic_endpoints(&g).unwrap();
    assert!(aug.added_source && aug.added_sink);
    let flow = compute_flow(&aug.graph, aug.source, aug.sink, FlowMethod::PreSim)
        .unwrap()
        .flow;
    // Everything the original sources emit eventually reaches a sink.
    assert!(close(flow, 9.0));
}

/// Figure 5(a): the chain DAG is greedy-soluble (Lemma 1) and its flow is 7.
#[test]
fn figure5a_chain_is_greedy_soluble() {
    let mut b = GraphBuilder::new();
    let s = b.add_node("s");
    let x = b.add_node("x");
    let y = b.add_node("y");
    let t = b.add_node("t");
    b.add_pairs(s, x, &[(1, 5.0), (4, 3.0), (5, 2.0)]).unwrap();
    b.add_pairs(x, y, &[(3, 3.0), (7, 4.0)]).unwrap();
    b.add_pairs(y, t, &[(6, 3.0), (8, 6.0)]).unwrap();
    let g = b.build();

    assert!(is_greedy_soluble(&g, s, t));
    let greedy = greedy_flow(&g, s, t).flow;
    let max = compute_flow(&g, s, t, FlowMethod::Lp).unwrap().flow;
    assert!(close(greedy, 7.0));
    assert!(close(greedy, max));
    let result = maximum_flow(&g, s, t).unwrap();
    assert_eq!(result.class, Some(DifficultyClass::A));
}

/// Figure 5(b): Lemma 2 — greedy computes the maximum flow (14).
#[test]
fn figure5b_lemma2_graph() {
    let mut b = GraphBuilder::new();
    let s = b.add_node("s");
    let y = b.add_node("y");
    let z = b.add_node("z");
    let w = b.add_node("w");
    let x = b.add_node("x");
    let t = b.add_node("t");
    b.add_pairs(s, y, &[(1, 5.0), (4, 3.0), (5, 2.0)]).unwrap();
    b.add_pairs(y, z, &[(3, 3.0), (7, 4.0)]).unwrap();
    b.add_pairs(z, w, &[(6, 3.0), (8, 6.0)]).unwrap();
    b.add_pairs(s, x, &[(9, 2.0), (12, 5.0)]).unwrap();
    b.add_pairs(x, w, &[(10, 3.0), (14, 4.0)]).unwrap();
    b.add_pairs(w, t, &[(15, 7.0)]).unwrap();
    b.add_pairs(s, t, &[(2, 5.0), (11, 2.0)]).unwrap();
    let g = b.build();

    assert!(is_greedy_soluble(&g, s, t));
    assert!(close(greedy_flow(&g, s, t).flow, 14.0));
    assert!(close(
        compute_flow(&g, s, t, FlowMethod::Lp).unwrap().flow,
        14.0
    ));
    assert!(close(
        compute_flow(&g, s, t, FlowMethod::TimeExpanded)
            .unwrap()
            .flow,
        14.0
    ));
}

/// Figure 6: preprocessing removes exactly the interactions the paper lists
/// and Figure 6(c)'s graph becomes greedy-soluble (class B).
#[test]
fn figure6_preprocessing() {
    let mut b = GraphBuilder::new();
    let s = b.add_node("s");
    let x = b.add_node("x");
    let y = b.add_node("y");
    let z = b.add_node("z");
    let t = b.add_node("t");
    b.add_pairs(s, x, &[(5, 3.0), (8, 3.0)]).unwrap();
    b.add_pairs(s, z, &[(10, 5.0)]).unwrap();
    b.add_pairs(x, y, &[(2, 7.0), (12, 4.0)]).unwrap();
    b.add_pairs(x, z, &[(1, 2.0), (13, 1.0)]).unwrap();
    b.add_pairs(y, t, &[(3, 3.0), (15, 2.0)]).unwrap();
    b.add_pairs(z, t, &[(4, 2.0), (11, 4.0)]).unwrap();
    b.add_pairs(s, y, &[(9, 7.0)]).unwrap();
    let g1 = b.build();
    let out = preprocess(&g1, s, t).unwrap();
    assert_eq!(out.report.interactions_removed, 4);
    // The maximum flow is preserved by preprocessing.
    let before = compute_flow(&g1, s, t, FlowMethod::Lp).unwrap().flow;
    let after = compute_flow(
        &out.graph,
        out.source.unwrap(),
        out.sink.unwrap(),
        FlowMethod::Lp,
    )
    .unwrap()
    .flow;
    assert!(close(before, after));

    // Figure 6(c): after preprocessing only s -> z -> t survives; the
    // pipeline classifies it as class B and avoids the LP entirely.
    let mut b = GraphBuilder::new();
    let s = b.add_node("s");
    let x = b.add_node("x");
    let y = b.add_node("y");
    let z = b.add_node("z");
    let t = b.add_node("t");
    b.add_pairs(s, x, &[(5, 3.0), (8, 3.0)]).unwrap();
    b.add_pairs(s, z, &[(10, 5.0)]).unwrap();
    b.add_pairs(x, y, &[(3, 4.0)]).unwrap();
    b.add_pairs(y, t, &[(2, 7.0), (12, 4.0)]).unwrap();
    b.add_pairs(y, z, &[(1, 2.0), (13, 1.0)]).unwrap();
    b.add_pairs(z, t, &[(4, 2.0), (11, 4.0)]).unwrap();
    let g2 = b.build();
    let result = compute_flow(&g2, s, t, FlowMethod::Pre).unwrap();
    assert_eq!(result.class, Some(DifficultyClass::B));
    assert!(close(result.flow, 4.0));
}

/// Figure 7: simplification reduces the LP from 9 variables to 3 while
/// preserving the maximum flow.
#[test]
fn figure7_simplification_shrinks_the_lp() {
    let mut b = GraphBuilder::new();
    let s = b.add_node("s");
    let y = b.add_node("y");
    let x = b.add_node("x");
    let z = b.add_node("z");
    let w = b.add_node("w");
    let u = b.add_node("u");
    let t = b.add_node("t");
    b.add_pairs(s, y, &[(1, 2.0), (4, 3.0), (5, 2.0)]).unwrap();
    b.add_pairs(y, z, &[(3, 3.0), (7, 1.0)]).unwrap();
    b.add_pairs(z, w, &[(6, 3.0), (8, 6.0)]).unwrap();
    b.add_pairs(s, x, &[(9, 2.0), (12, 5.0)]).unwrap();
    b.add_pairs(x, w, &[(10, 3.0), (14, 4.0)]).unwrap();
    b.add_pairs(s, z, &[(2, 5.0), (11, 2.0)]).unwrap();
    b.add_pairs(w, t, &[(15, 7.0)]).unwrap();
    b.add_pairs(w, u, &[(13, 5.0)]).unwrap();
    b.add_pairs(u, t, &[(16, 6.0)]).unwrap();
    let g = b.build();

    let lp = compute_flow(&g, s, t, FlowMethod::Lp).unwrap();
    assert_eq!(lp.stats.lp_variables, Some(9));

    let presim = compute_flow(&g, s, t, FlowMethod::PreSim).unwrap();
    assert!(close(lp.flow, presim.flow));
    if let Some(vars) = presim.stats.lp_variables {
        assert_eq!(vars, 3);
    } else {
        assert!(presim.stats.solved_by_greedy);
    }
}

/// Figure 2: the cyclic pattern instance of the preliminaries has flow $5.
#[test]
fn figure2_pattern_instance_flow() {
    use tin_patterns::{search_gb, PatternCatalogue, PatternId};

    let g = tin_graph::builder::from_records([
        ("u1", "u2", 2, 5.0),
        ("u1", "u2", 4, 3.0),
        ("u1", "u2", 8, 1.0),
        ("u2", "u3", 3, 4.0),
        ("u2", "u3", 5, 2.0),
        ("u3", "u1", 1, 2.0),
        ("u3", "u1", 6, 5.0),
        ("u4", "u1", 7, 6.0),
        ("u2", "u4", 9, 4.0),
        ("u4", "u3", 10, 1.0),
    ]);
    let pattern = PatternCatalogue::build(PatternId::P3);
    let instances = tin_patterns::enumerate_gb(&g, &pattern, 0);
    // The u1 -> u2 -> u3 -> u1 instance exists and has flow 5.
    let u1 = g.node_by_name("u1").unwrap();
    let u2 = g.node_by_name("u2").unwrap();
    let u3 = g.node_by_name("u3").unwrap();
    let target = instances
        .iter()
        .find(|i| i.mapping == vec![u1, u2, u3, u1])
        .expect("the Figure 2(c) instance is found");
    let flow = target.flow(&g, &pattern, FlowMethod::PreSim).unwrap();
    assert!(close(flow, 5.0));
    // And the aggregate search agrees with itself across GB runs.
    let summary = search_gb(&g, PatternId::P3, 0);
    assert_eq!(summary.instances, instances.len());
}
