//! End-to-end integration tests: synthetic dataset → seed subgraph
//! extraction → flow computation → pattern search, exercising every crate
//! through the public facade.

use temporal_flow::prelude::*;
use tin_datasets::{extract_seed_subgraphs, generate, DatasetKind, ExtractConfig};
use tin_patterns::{search_gb, search_pb, PathTables, PatternId, TablesConfig};

fn small_extract_config() -> ExtractConfig {
    ExtractConfig {
        max_interactions: 200,
        max_subgraphs: 25,
        ..ExtractConfig::default()
    }
}

#[test]
fn every_dataset_supports_the_full_flow_pipeline() {
    for kind in DatasetKind::ALL {
        let graph = generate(kind, 1234);
        assert!(
            graph.interaction_count() > 1000,
            "{kind}: dataset too small"
        );
        let subgraphs = extract_seed_subgraphs(&graph, &small_extract_config());
        assert!(!subgraphs.is_empty(), "{kind}: no subgraphs extracted");
        for sub in subgraphs.iter().take(10) {
            let greedy = greedy_flow(&sub.graph, sub.source, sub.sink).flow;
            let lp = compute_flow(&sub.graph, sub.source, sub.sink, FlowMethod::Lp)
                .unwrap()
                .flow;
            let pre = compute_flow(&sub.graph, sub.source, sub.sink, FlowMethod::Pre)
                .unwrap()
                .flow;
            let presim = compute_flow(&sub.graph, sub.source, sub.sink, FlowMethod::PreSim)
                .unwrap()
                .flow;
            let oracle = compute_flow(&sub.graph, sub.source, sub.sink, FlowMethod::TimeExpanded)
                .unwrap()
                .flow;
            let tol = 1e-6 * (1.0 + oracle.abs());
            assert!(
                (lp - oracle).abs() < tol,
                "{kind}: LP {lp} vs oracle {oracle}"
            );
            assert!(
                (pre - oracle).abs() < tol,
                "{kind}: Pre {pre} vs oracle {oracle}"
            );
            assert!(
                (presim - oracle).abs() < tol,
                "{kind}: PreSim {presim} vs oracle {oracle}"
            );
            assert!(
                greedy <= oracle + tol,
                "{kind}: greedy {greedy} above maximum {oracle}"
            );
        }
    }
}

#[test]
fn difficulty_classes_are_all_represented_somewhere() {
    use tin_flow::DifficultyClass;
    let mut seen = std::collections::HashSet::new();
    for kind in DatasetKind::ALL {
        let graph = generate(kind, 77);
        for sub in extract_seed_subgraphs(&graph, &small_extract_config()) {
            let r = compute_flow(&sub.graph, sub.source, sub.sink, FlowMethod::PreSim).unwrap();
            seen.insert(r.class.unwrap());
        }
    }
    assert!(
        seen.contains(&DifficultyClass::A),
        "no class A subgraphs found"
    );
    assert!(
        seen.contains(&DifficultyClass::C),
        "no class C subgraphs found"
    );
}

#[test]
fn pattern_search_gb_and_pb_agree_on_a_generated_network() {
    // A small Prosper-like network keeps the instance counts manageable.
    let graph = tin_datasets::generate_prosper(
        &tin_datasets::ProsperConfig {
            seed: 5,
            ..Default::default()
        }
        .scaled(0.05),
    );
    let tables = PathTables::build(&graph, &TablesConfig::default());
    for id in [PatternId::P1, PatternId::P2, PatternId::P3, PatternId::P5] {
        let gb = search_gb(&graph, id, 0);
        let pb = search_pb(&graph, &tables, id, 0).expect("all tables built");
        assert_eq!(gb.instances, pb.instances, "{id}: instance counts differ");
        assert!(
            (gb.total_flow - pb.total_flow).abs() < 1e-6 * (1.0 + gb.total_flow.abs()),
            "{id}: flows differ (GB {}, PB {})",
            gb.total_flow,
            pb.total_flow
        );
    }
}

#[test]
fn graph_io_roundtrips_a_generated_dataset() {
    let graph = generate(DatasetKind::Ctu13, 9);
    let text = tin_graph::io::to_text(&graph).unwrap();
    let back = tin_graph::io::from_text(&text).unwrap();
    assert_eq!(back.node_count(), graph.node_count());
    assert_eq!(back.edge_count(), graph.edge_count());
    assert_eq!(back.interaction_count(), graph.interaction_count());
    assert!((back.total_quantity() - graph.total_quantity()).abs() < 1e-6);

    let json = tin_graph::io::to_json(&graph);
    let back = tin_graph::io::from_json(&json).unwrap();
    assert_eq!(back.interaction_count(), graph.interaction_count());
}

#[test]
fn facade_prelude_covers_the_quickstart_workflow() {
    // The README quickstart, as a test.
    let mut b = GraphBuilder::new();
    let alice = b.add_node("alice");
    let bob = b.add_node("bob");
    let carol = b.add_node("carol");
    b.add_pairs(alice, bob, &[(1, 100.0), (5, 50.0)]).unwrap();
    b.add_pairs(bob, carol, &[(3, 80.0), (7, 60.0)]).unwrap();
    let g = b.build();
    let greedy = greedy_flow(&g, alice, carol).flow;
    let max = maximum_flow(&g, alice, carol).unwrap().flow;
    assert!(greedy <= max);
    assert_eq!(max, 140.0);
}
