//! Acceptance test for the ingestion subsystem: a CSV file with headers
//! loads through `tin_datasets::loader` into seed extraction and PB pattern
//! search, behaving exactly like a generated dataset.

use tin_datasets::{extract_seed_subgraphs, load_path, ExtractConfig, LoaderConfig, ParseMode};
use tin_patterns::{search_gb, search_pb, PathTables, PatternId, TablesConfig};

fn fixture(name: &str) -> String {
    format!(
        "{}/crates/datasets/fixtures/{name}",
        env!("CARGO_MANIFEST_DIR")
    )
}

#[test]
fn csv_fixture_feeds_extraction_and_pattern_search() {
    let loaded = load_path(
        fixture("transactions.csv"),
        &LoaderConfig {
            mode: ParseMode::Lenient,
            ..LoaderConfig::default()
        },
    )
    .unwrap();
    assert!(loaded.report.had_header);
    assert_eq!(loaded.report.rows, 30);
    assert_eq!(loaded.report.skipped, 1);
    let graph = &loaded.graph;
    graph.validate().unwrap();

    // Seed extraction behaves as on generated datasets: every subgraph is a
    // DAG with a computable round-trip flow.
    let subs = extract_seed_subgraphs(
        graph,
        &ExtractConfig {
            min_interactions: 2,
            ..ExtractConfig::default()
        },
    );
    assert!(!subs.is_empty());
    let mut positive_flows = 0;
    for sub in &subs {
        assert!(tin_graph::is_dag(&sub.graph));
        let r = tin_flow::compute_flow(
            &sub.graph,
            sub.source,
            sub.sink,
            tin_flow::FlowMethod::PreSim,
        )
        .unwrap();
        if r.flow > 0.0 {
            positive_flows += 1;
        }
    }
    assert!(
        positive_flows >= 3,
        "the fixture's fraud rings carry flow, got {positive_flows}"
    );

    // PB pattern search runs off the loaded graph and agrees with GB.
    let tables = PathTables::build(graph, &TablesConfig::default());
    assert!(tables.row_count() > 0);
    let mut total_instances = 0;
    for id in PatternId::ALL {
        let gb = search_gb(graph, id, 0);
        let pb = search_pb(graph, &tables, id, 0).expect("all tables built");
        assert_eq!(gb.instances, pb.instances, "{id}: GB/PB disagree");
        assert!(
            (gb.total_flow - pb.total_flow).abs() < 1e-6 * (1.0 + gb.total_flow.abs()),
            "{id}: flows diverge"
        );
        total_instances += gb.instances;
    }
    assert!(
        total_instances > 0,
        "the fixture contains pattern instances"
    );
}

#[test]
fn loader_and_text_format_agree_on_the_same_records() {
    // The same records expressed as headered CSV and as the compact text
    // format produce structurally identical graphs.
    let csv = load_path(
        fixture("transactions.csv"),
        &LoaderConfig {
            mode: ParseMode::Lenient,
            ..LoaderConfig::default()
        },
    )
    .unwrap()
    .graph;
    let text = tin_graph::io::to_text(&csv).unwrap();
    let back = tin_graph::io::from_text(&text).unwrap();
    assert_eq!(tin_graph::io::to_json(&csv), tin_graph::io::to_json(&back));
}
