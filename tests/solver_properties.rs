//! Property-based cross-checks of the flow machinery on randomized temporal
//! DAGs: the LP formulation, the time-expanded max-flow oracle, the greedy
//! scan, preprocessing and simplification must all relate to each other
//! exactly as the paper claims.

use proptest::prelude::*;
use temporal_flow::prelude::*;
use tin_graph::NodeId;

/// A randomly generated temporal DAG description: edges only go from lower
/// to higher vertex indices, which guarantees acyclicity by construction.
#[derive(Debug, Clone)]
struct RandomDag {
    nodes: usize,
    /// (src, dst, time, quantity) with src < dst.
    interactions: Vec<(usize, usize, i64, f64)>,
}

fn random_dag(
    max_nodes: usize,
    max_interactions_per_edge: usize,
) -> impl Strategy<Value = RandomDag> {
    (3..=max_nodes).prop_flat_map(move |nodes| {
        // Candidate edges between ordered pairs.
        let pairs: Vec<(usize, usize)> = (0..nodes)
            .flat_map(|a| ((a + 1)..nodes).map(move |b| (a, b)))
            .collect();
        let per_edge =
            proptest::collection::vec((0..=max_interactions_per_edge, any::<u64>()), pairs.len());
        per_edge.prop_map(move |specs| {
            let mut interactions = Vec::new();
            for ((a, b), (count, seed)) in pairs.iter().zip(specs) {
                // Derive deterministic pseudo-random times/quantities from
                // the seed so shrinking stays meaningful.
                let mut state = seed | 1;
                for _ in 0..count {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let time = (state >> 33) as i64 % 24;
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let quantity = (((state >> 33) % 9) + 1) as f64;
                    interactions.push((*a, *b, time, quantity));
                }
            }
            RandomDag {
                nodes,
                interactions,
            }
        })
    })
}

fn build(dag: &RandomDag) -> (tin_graph::TemporalGraph, NodeId, NodeId) {
    let mut b = GraphBuilder::new();
    let ids: Vec<NodeId> = (0..dag.nodes)
        .map(|i| b.add_node(format!("v{i}")))
        .collect();
    for &(a, c, t, q) in &dag.interactions {
        b.add_interaction(ids[a], ids[c], Interaction::new(t, q))
            .unwrap();
    }
    (b.build(), ids[0], ids[dag.nodes - 1])
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * (1.0 + a.abs().max(b.abs()))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The greedy flow never exceeds the maximum flow, and both are finite
    /// and non-negative.
    #[test]
    fn greedy_is_a_lower_bound(dag in random_dag(7, 2)) {
        let (g, s, t) = build(&dag);
        let greedy = greedy_flow(&g, s, t).flow;
        let max = compute_flow(&g, s, t, FlowMethod::TimeExpanded).unwrap().flow;
        prop_assert!(greedy.is_finite() && greedy >= 0.0);
        prop_assert!(max.is_finite() && max >= 0.0);
        prop_assert!(greedy <= max + 1e-6, "greedy {greedy} > max {max}");
    }

    /// The LP formulation and the time-expanded static max-flow compute the
    /// same optimum (the Section 4.2.1 equivalence).
    #[test]
    fn lp_equals_time_expanded(dag in random_dag(6, 2)) {
        let (g, s, t) = build(&dag);
        let lp = compute_flow(&g, s, t, FlowMethod::Lp).unwrap().flow;
        let te = compute_flow(&g, s, t, FlowMethod::TimeExpanded).unwrap().flow;
        prop_assert!(close(lp, te), "LP {lp} vs time-expanded {te}");
    }

    /// `Pre` and `PreSim` are exact: they agree with the plain LP baseline.
    #[test]
    fn pre_and_presim_are_exact(dag in random_dag(6, 2)) {
        let (g, s, t) = build(&dag);
        let lp = compute_flow(&g, s, t, FlowMethod::Lp).unwrap().flow;
        let pre = compute_flow(&g, s, t, FlowMethod::Pre).unwrap().flow;
        let presim = compute_flow(&g, s, t, FlowMethod::PreSim).unwrap().flow;
        prop_assert!(close(lp, pre), "LP {lp} vs Pre {pre}");
        prop_assert!(close(lp, presim), "LP {lp} vs PreSim {presim}");
    }

    /// Preprocessing never increases the problem size and never changes the
    /// maximum flow.
    #[test]
    fn preprocessing_preserves_the_maximum(dag in random_dag(7, 2)) {
        let (g, s, t) = build(&dag);
        let before = compute_flow(&g, s, t, FlowMethod::TimeExpanded).unwrap().flow;
        let out = preprocess(&g, s, t).unwrap();
        prop_assert!(out.graph.interaction_count() <= g.interaction_count());
        let after = match (out.source, out.sink) {
            (Some(ns), Some(nt)) if !out.is_zero_flow() => {
                compute_flow(&out.graph, ns, nt, FlowMethod::TimeExpanded).unwrap().flow
            }
            _ => 0.0,
        };
        prop_assert!(close(before, after), "before {before} vs after {after}");
    }

    /// Simplification preserves the maximum flow and never increases the
    /// number of non-source interactions (the LP variable count).
    #[test]
    fn simplification_preserves_the_maximum(dag in random_dag(7, 2)) {
        let (g, s, t) = build(&dag);
        let before = compute_flow(&g, s, t, FlowMethod::TimeExpanded).unwrap().flow;
        let out = simplify(&g, s, t);
        let after = compute_flow(&out.graph, out.source, out.sink, FlowMethod::TimeExpanded)
            .unwrap()
            .flow;
        prop_assert!(close(before, after), "before {before} vs after {after}");
        let vars = |g: &tin_graph::TemporalGraph, source: NodeId| -> usize {
            g.edges().iter().filter(|e| e.src != source).map(|e| e.interactions.len()).sum()
        };
        prop_assert!(vars(&out.graph, out.source) <= vars(&g, s));
    }

    /// On Lemma 2 graphs the greedy scan is exact.
    #[test]
    fn lemma2_graphs_are_greedy_exact(dag in random_dag(7, 2)) {
        let (g, s, t) = build(&dag);
        if is_greedy_soluble(&g, s, t) {
            let greedy = greedy_flow(&g, s, t).flow;
            let max = compute_flow(&g, s, t, FlowMethod::TimeExpanded).unwrap().flow;
            prop_assert!(close(greedy, max), "greedy {greedy} vs max {max}");
        }
    }

    /// The greedy trace conserves flow at every intermediate vertex.
    #[test]
    fn greedy_trace_conserves_flow(dag in random_dag(7, 3)) {
        let (g, s, t) = build(&dag);
        let result = tin_flow::greedy_flow_traced(&g, s, t);
        let mut balance = vec![0.0f64; g.node_count()];
        for step in &result.trace {
            balance[step.src.index()] -= step.transferred;
            balance[step.dst.index()] += step.transferred;
            prop_assert!(step.transferred >= 0.0);
            prop_assert!(step.transferred <= step.requested + 1e-9);
        }
        for v in g.node_ids() {
            if v == s {
                continue;
            }
            prop_assert!(balance[v.index()] >= -1e-9, "vertex {v} sent more than it received");
            prop_assert!(close(balance[v.index()], result.buffers[v.index()]));
        }
        prop_assert!(close(result.buffers[t.index()], result.flow));
    }
}

/// Chain graphs: the maximum flow equals the greedy flow and is bounded by
/// every edge's total quantity (deterministic, not property-based, but kept
/// here with the other invariants).
#[test]
fn chain_flow_is_bounded_by_every_edge() {
    let mut b = GraphBuilder::new();
    let ids: Vec<NodeId> = (0..5).map(|i| b.add_node(format!("v{i}"))).collect();
    b.add_pairs(ids[0], ids[1], &[(1, 5.0), (4, 7.0)]).unwrap();
    b.add_pairs(ids[1], ids[2], &[(2, 3.0), (5, 6.0)]).unwrap();
    b.add_pairs(ids[2], ids[3], &[(3, 2.0), (6, 8.0)]).unwrap();
    b.add_pairs(ids[3], ids[4], &[(7, 20.0)]).unwrap();
    let g = b.build();
    let max = maximum_flow(&g, ids[0], ids[4]).unwrap().flow;
    let greedy = greedy_flow(&g, ids[0], ids[4]).flow;
    assert!((max - greedy).abs() < 1e-9);
    for e in g.edges() {
        assert!(max <= e.total_quantity() + 1e-9);
    }
}
