//! # temporal-flow
//!
//! Facade crate for the *Flow Computation in Temporal Interaction Networks*
//! workspace (reproduction of Kosyfaki et al., ICDE 2021).
//!
//! The heavy lifting lives in the member crates; this crate simply re-exports
//! them under stable names and offers a small [`prelude`]:
//!
//! * [`graph`] ([`tin_graph`]) — the temporal interaction network data model;
//! * [`lp`] ([`tin_lp`]) — the LP solver substrate (sparse revised simplex
//!   with a dense-tableau cross-check engine);
//! * [`maxflow`] ([`tin_maxflow`]) — static max-flow algorithms and the
//!   time-expanded reduction;
//! * [`flow`] ([`tin_flow`]) — greedy and maximum flow computation,
//!   preprocessing, simplification and the `Greedy`/`LP`/`Pre`/`PreSim`
//!   pipelines;
//! * [`patterns`] ([`tin_patterns`]) — flow pattern enumeration (graph
//!   browsing and precomputation-based);
//! * [`datasets`] ([`tin_datasets`]) — synthetic dataset generators and
//!   subgraph extraction.
//!
//! ## Quick start
//!
//! ```
//! use temporal_flow::prelude::*;
//!
//! // The toy network of Figure 1(a) of the paper.
//! let mut b = GraphBuilder::new();
//! let s = b.add_node("s");
//! let x = b.add_node("x");
//! let y = b.add_node("y");
//! let z = b.add_node("z");
//! let t = b.add_node("t");
//! b.add_pairs(s, x, &[(1, 3.0), (7, 5.0)]).unwrap();
//! b.add_pairs(s, y, &[(2, 6.0)]).unwrap();
//! b.add_pairs(x, z, &[(5, 5.0)]).unwrap();
//! b.add_pairs(y, z, &[(8, 5.0)]).unwrap();
//! b.add_pairs(y, t, &[(9, 4.0)]).unwrap();
//! b.add_pairs(z, t, &[(2, 3.0), (10, 1.0)]).unwrap();
//! let g = b.build();
//!
//! let greedy = greedy_flow(&g, s, t).flow;
//! let max = compute_flow(&g, s, t, FlowMethod::PreSim).unwrap().flow;
//! assert!(greedy <= max);
//! assert_eq!(max, 5.0);
//! ```

#![forbid(unsafe_code)]

pub use tin_datasets as datasets;
pub use tin_flow as flow;
pub use tin_graph as graph;
pub use tin_lp as lp;
pub use tin_maxflow as maxflow;
pub use tin_patterns as patterns;

/// The most frequently used items across the workspace.
pub mod prelude {
    pub use tin_datasets::{BitcoinConfig, Ctu13Config, DatasetKind, ProsperConfig};
    pub use tin_flow::{
        compute_flow, greedy_flow, is_greedy_soluble, maximum_flow, preprocess, simplify,
        FlowMethod, FlowResult, FlowSession, SessionSolve, SessionStats,
    };
    pub use tin_graph::prelude::*;
    pub use tin_patterns::{Pattern, PatternCatalogue, PatternSearchResult};
}
