//! Quickstart: the running examples of the paper on a few toy networks.
//!
//! Run with: `cargo run --release --example quickstart`

use temporal_flow::prelude::*;
use tin_flow::{greedy_flow_traced, lp_max_flow, preprocess, simplify};

fn main() {
    figure1();
    figure3_tables_2_and_3();
    preprocessing_figure6();
    simplification_figure7();
}

/// Figure 1(a): a toy money-transfer network where greedy forwarding loses
/// most of the flow and the maximum flow is 5.
fn figure1() {
    println!("=== Figure 1: greedy vs maximum flow ===");
    let mut b = GraphBuilder::new();
    let s = b.add_node("s");
    let x = b.add_node("x");
    let y = b.add_node("y");
    let z = b.add_node("z");
    let t = b.add_node("t");
    b.add_pairs(s, x, &[(1, 3.0), (7, 5.0)]).unwrap();
    b.add_pairs(s, y, &[(2, 6.0)]).unwrap();
    b.add_pairs(x, z, &[(5, 5.0)]).unwrap();
    b.add_pairs(y, z, &[(8, 5.0)]).unwrap();
    b.add_pairs(y, t, &[(9, 4.0)]).unwrap();
    b.add_pairs(z, t, &[(2, 3.0), (10, 1.0)]).unwrap();
    let g = b.build();

    let greedy = greedy_flow(&g, s, t).flow;
    let maximum = compute_flow(&g, s, t, FlowMethod::PreSim).unwrap();
    println!("greedy flow  : {greedy}");
    println!(
        "maximum flow : {} (class {:?})",
        maximum.flow,
        maximum.class.unwrap()
    );
    println!();
}

/// Figure 3 with the step-by-step buffer evolution of Tables 2 and 3.
fn figure3_tables_2_and_3() {
    println!("=== Figure 3 / Tables 2-3: buffer evolution ===");
    let mut b = GraphBuilder::new();
    let s = b.add_node("s");
    let y = b.add_node("y");
    let z = b.add_node("z");
    let t = b.add_node("t");
    b.add_pairs(s, y, &[(1, 5.0)]).unwrap();
    b.add_pairs(s, z, &[(2, 3.0)]).unwrap();
    b.add_pairs(y, z, &[(3, 5.0)]).unwrap();
    b.add_pairs(y, t, &[(4, 4.0)]).unwrap();
    b.add_pairs(z, t, &[(5, 1.0)]).unwrap();
    let g = b.build();

    let traced = greedy_flow_traced(&g, s, t);
    println!(
        "{:<12} {:<10} {:>11} {:>12}",
        "(t, q)", "edge", "requested", "transferred"
    );
    for step in &traced.trace {
        println!(
            "({:>2}, {:>4})   {}->{}   {:>11} {:>12}",
            step.time,
            step.requested,
            g.node(step.src).name,
            g.node(step.dst).name,
            step.requested,
            step.transferred
        );
    }
    println!("greedy flow (Table 2) : {}", traced.flow);
    println!(
        "maximum flow (Table 3): {}",
        lp_max_flow(&g, s, t).unwrap().flow
    );
    println!();
}

/// Figure 6: Algorithm 1 removes interactions that cannot carry flow.
fn preprocessing_figure6() {
    println!("=== Figure 6: DAG preprocessing ===");
    let mut b = GraphBuilder::new();
    let s = b.add_node("s");
    let x = b.add_node("x");
    let y = b.add_node("y");
    let z = b.add_node("z");
    let t = b.add_node("t");
    b.add_pairs(s, x, &[(5, 3.0), (8, 3.0)]).unwrap();
    b.add_pairs(s, z, &[(10, 5.0)]).unwrap();
    b.add_pairs(x, y, &[(2, 7.0), (12, 4.0)]).unwrap();
    b.add_pairs(x, z, &[(1, 2.0), (13, 1.0)]).unwrap();
    b.add_pairs(y, t, &[(3, 3.0), (15, 2.0)]).unwrap();
    b.add_pairs(z, t, &[(4, 2.0), (11, 4.0)]).unwrap();
    b.add_pairs(s, y, &[(9, 7.0)]).unwrap();
    let g = b.build();

    let out = preprocess(&g, s, t).unwrap();
    println!(
        "removed {} interactions, {} edges, {} vertices ({} interactions remain)",
        out.report.interactions_removed,
        out.report.edges_removed,
        out.report.nodes_removed,
        out.report.interactions_remaining
    );
    println!();
}

/// Figure 7: Algorithm 2 contracts source-rooted chains, shrinking the LP
/// from 9 variables to 3.
fn simplification_figure7() {
    println!("=== Figure 7: graph simplification ===");
    let mut b = GraphBuilder::new();
    let s = b.add_node("s");
    let y = b.add_node("y");
    let x = b.add_node("x");
    let z = b.add_node("z");
    let w = b.add_node("w");
    let u = b.add_node("u");
    let t = b.add_node("t");
    b.add_pairs(s, y, &[(1, 2.0), (4, 3.0), (5, 2.0)]).unwrap();
    b.add_pairs(y, z, &[(3, 3.0), (7, 1.0)]).unwrap();
    b.add_pairs(z, w, &[(6, 3.0), (8, 6.0)]).unwrap();
    b.add_pairs(s, x, &[(9, 2.0), (12, 5.0)]).unwrap();
    b.add_pairs(x, w, &[(10, 3.0), (14, 4.0)]).unwrap();
    b.add_pairs(s, z, &[(2, 5.0), (11, 2.0)]).unwrap();
    b.add_pairs(w, t, &[(15, 7.0)]).unwrap();
    b.add_pairs(w, u, &[(13, 5.0)]).unwrap();
    b.add_pairs(u, t, &[(16, 6.0)]).unwrap();
    let g = b.build();

    let out = simplify(&g, s, t);
    println!(
        "{} chains contracted, {} vertices removed, interactions {} -> {}",
        out.report.chains_contracted,
        out.report.nodes_removed,
        out.report.interactions_before,
        out.report.interactions_after
    );
    let max = compute_flow(&g, s, t, FlowMethod::PreSim).unwrap().flow;
    let max_simplified = compute_flow(&out.graph, out.source, out.sink, FlowMethod::Lp)
        .unwrap()
        .flow;
    println!("maximum flow before: {max}, after simplification: {max_simplified}");
}
