//! Fraud-ring hunting on a Bitcoin-like transaction network.
//!
//! This is the paper's motivating FIU (financial intelligence unit) use
//! case: find accounts whose outgoing money returns to them through short
//! chains of intermediaries, and measure how much actually flows around the
//! loop — large round-trip flows are a money-laundering signal.
//!
//! Run with: `cargo run --release --example fraud_rings`

use temporal_flow::prelude::*;
use tin_datasets::{extract_seed_subgraphs, generate_bitcoin, ExtractConfig};
use tin_flow::DifficultyClass;
use tin_patterns::{LazyPathTables, TablesConfig};

fn main() {
    // A scaled-down Bitcoin-like transaction network.
    let config = BitcoinConfig {
        seed: 2024,
        ..BitcoinConfig::default()
    }
    .scaled(0.25);
    let graph = generate_bitcoin(&config);
    println!(
        "transaction network: {} accounts, {} edges, {} transactions",
        graph.node_count(),
        graph.edge_count(),
        graph.interaction_count()
    );

    // Extract, for every account, the subgraph of ≤3-hop round trips.
    let subgraphs = extract_seed_subgraphs(
        &graph,
        &ExtractConfig {
            max_interactions: 800,
            max_subgraphs: 200,
            ..ExtractConfig::default()
        },
    );
    println!(
        "{} accounts have round-trip activity within 3 hops\n",
        subgraphs.len()
    );

    // Compute the maximum round-trip flow for each and rank.
    let mut rankings: Vec<(NodeId, f64, f64, DifficultyClass, usize)> = Vec::new();
    for sub in &subgraphs {
        let greedy = greedy_flow(&sub.graph, sub.source, sub.sink).flow;
        let result = compute_flow(&sub.graph, sub.source, sub.sink, FlowMethod::PreSim)
            .expect("extracted subgraphs are valid flow DAGs");
        rankings.push((
            sub.seed,
            result.flow,
            greedy,
            result.class.unwrap_or(DifficultyClass::C),
            sub.graph.interaction_count(),
        ));
    }
    rankings.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));

    println!(
        "{:<12} {:>14} {:>14} {:>7} {:>14}",
        "account", "max round-trip", "greedy estimate", "class", "#transactions"
    );
    for (seed, max, greedy, class, interactions) in rankings.iter().take(15) {
        let name = &graph.node(*seed).name;
        println!("{name:<12} {max:>14.2} {greedy:>14.2} {class:>7} {interactions:>14}");
    }

    let class_c = rankings
        .iter()
        .filter(|r| r.3 == DifficultyClass::C)
        .count();
    println!(
        "\n{} of {} suspicious neighbourhoods needed the LP-based maximum flow (class C);",
        class_c,
        rankings.len()
    );
    println!("the rest were solved at greedy cost thanks to Lemma 2 and preprocessing.");

    // Drill into the top suspect with anchor-lazy path tables: only this
    // account's neighbourhood is precomputed (O(deg²) kernel work), instead
    // of paying for a whole-graph table build.
    if let Some(&(seed, ..)) = rankings.first() {
        let mut lazy = LazyPathTables::new(TablesConfig {
            build_c2: false,
            ..TablesConfig::default()
        });
        let tables = lazy.tables_for(&graph, seed);
        let l2 = tables.l2.rows_for(seed);
        let l3 = tables.l3.rows_for(seed);
        let round_trip: f64 = l2.iter().chain(l3).map(|r| r.flow).sum();
        println!(
            "\ntop suspect {}: {} two-hop and {} three-hop return loops, {:.2} units of \
             loop flow\n(anchor-lazy tables: {} kernel passes for this account alone)",
            graph.node(seed).name,
            l2.len(),
            l3.len(),
            round_trip,
            lazy.kernel_calls()
        );
    }
}
