//! The streaming pipeline end to end: a transaction log is consumed in
//! small batches as if it were arriving live, every batch is merged into
//! the graph as a [`tin_graph::GraphDelta`], the PB path tables are patched
//! incrementally, a [`FlowSession`] tracks one exact source→sink flow
//! value across batches on a persistent simplex basis, and pattern search
//! runs between batches against the up-to-the-batch state — no snapshot
//! rebuild anywhere.
//!
//! Ingest and apply failures exit nonzero with a message on stderr instead
//! of panicking — this binary doubles as the kill-and-restart smoke target.
//!
//! Run with: `cargo run --release --example live_feed`

use std::io::Write as _;
use temporal_flow::prelude::*;
use tin_datasets::{generate, DatasetKind, DeltaStream, LoaderConfig};
use tin_patterns::{search_pb, PathTables, PatternId, TablesConfig};

fn main() {
    if let Err(e) = run() {
        eprintln!("live_feed error: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    // A "live feed": the Bitcoin-shaped generator's log serialized as CSV
    // in timestamp order (as a real feed arrives), then replayed in batches
    // of 50 records. In production the reader would be a socket or a tailed
    // file — DeltaStream takes any io::Read. Time order also keeps the flow
    // session's warm path in its regime: new interactions extend the
    // time-expanded chains at their tails instead of splicing mid-chain.
    let full = generate(DatasetKind::Bitcoin, 7);
    let mut log: Vec<(i64, String)> = Vec::new();
    for edge in full.edges() {
        let (src, dst) = (&full.node(edge.src).name, &full.node(edge.dst).name);
        for i in &edge.interactions {
            log.push((i.time, format!("{src},{dst},{},{}", i.time, i.quantity)));
        }
    }
    log.sort_by_key(|row| row.0);
    let mut csv: Vec<u8> = b"sender,recipient,timestamp,amount\n".to_vec();
    for (_, row) in &log {
        writeln!(csv, "{row}")?;
    }
    println!(
        "feed: {} records from the {} generator ({} accounts)\n",
        full.interaction_count(),
        DatasetKind::Bitcoin,
        full.node_count()
    );

    // The tracked flow pair: the account sending the most and the account
    // receiving the most over the whole log — the pair an analyst would
    // watch. Resolved by name on the live graph once both have appeared.
    let (source_name, sink_name) = busiest_pair(&full);
    println!("tracking exact flow {source_name} -> {sink_name}\n");

    let mut stream = DeltaStream::new(csv.as_slice(), &LoaderConfig::default())?;
    let mut graph = TemporalGraph::new();
    let config = TablesConfig::default();
    let mut tables = PathTables::build(&graph, &config);
    let mut flow_session: Option<FlowSession> = None;

    // Ingest → append → incremental table update → pattern search, batch by
    // batch. Memory stays bounded by the graph + tables; the log is never
    // materialized.
    let mut batch_no = 0usize;
    let mut groups = 0usize;
    let mut tracked_flow = 0.0f64;
    while let Some(delta) = stream.next_delta(50)? {
        let applied = graph.apply(&delta)?;
        let update = tables.apply(&graph, &applied);
        assert!(!update.rebuilt, "small deltas never trigger a rebuild");
        groups += update.refreshed_groups;
        batch_no += 1;

        // Keep the tracked flow value current: patch the session's
        // min-cost-flow arc arrays with this batch's delta and re-optimize
        // from the previous basis — no per-batch rebuild here either.
        match flow_session.as_mut() {
            Some(session) => {
                session.advance(&graph, &applied);
                tracked_flow = session.solve()?.flow;
            }
            None => {
                if let (Some(s), Some(t)) = (
                    graph.node_by_name(&source_name),
                    graph.node_by_name(&sink_name),
                ) {
                    let mut session = FlowSession::new(&graph, s, t, FlowMethod::Lp)?;
                    tracked_flow = session.solve()?.flow;
                    flow_session = Some(session);
                }
            }
        }

        // Query the live state every 10 batches: 2-hop cycle instances (P2)
        // straight from the incrementally maintained tables.
        if batch_no % 10 == 0 {
            let p2 = search_pb(&graph, &tables, PatternId::P2, 0)
                .ok_or("cycle tables are unavailable for P2")?;
            println!(
                "after batch {batch_no:>3} ({:>5} transfers): {:>4} two-hop cycles, \
                 avg flow {:>7.2}, tracked flow {:>8.2}  [{} rows refreshed this batch]",
                graph.interaction_count(),
                p2.instances,
                p2.average_flow,
                tracked_flow,
                update.refreshed_groups,
            );
        }
    }
    println!(
        "\nfinal: {} accounts, {} transfers in {} batches; {} row groups refreshed \
         incrementally across the run",
        graph.node_count(),
        graph.interaction_count(),
        batch_no,
        groups
    );

    // The streamed state is exactly the snapshot state: same graph as the
    // generator's, tables row-identical to a from-scratch build.
    assert_eq!(graph.interaction_count(), full.interaction_count());
    let rebuilt = PathTables::build(&graph, &config);
    assert_eq!(tables.first_row_divergence(&rebuilt), None);
    println!("verified: incremental tables are row-identical to a full rebuild");

    // The session's warm answer is the exact answer: a from-scratch
    // emission + cold network-simplex solve on the final graph agrees —
    // the basis only changed where the simplex starts, never where it
    // stops.
    let session = flow_session.ok_or("the tracked flow pair never appeared in the feed")?;
    let f = temporal_flow::flow::build_mcf(&graph, session.source(), session.sink());
    let cold_flow = f.problem.solve().flows[f.return_arc];
    assert!(
        (tracked_flow - cold_flow).abs() <= 1e-6 * (1.0 + cold_flow.abs()),
        "session flow {tracked_flow} != cold flow {cold_flow}"
    );
    let stats = session.stats();
    println!(
        "verified: tracked flow {tracked_flow:.2} matches a from-scratch solve \
         ({} of {} solves reused the basis, {} warm vs {} cold pivots)",
        stats.basis_hits, stats.solves, stats.warm_pivots, stats.cold_pivots
    );
    Ok(())
}

/// The busiest pair over the full log: the account sending the largest
/// total quantity and the one receiving the largest (excluding the source).
fn busiest_pair(graph: &TemporalGraph) -> (String, String) {
    let n = graph.node_count();
    let (mut sent, mut received) = (vec![0.0f64; n], vec![0.0f64; n]);
    for edge in graph.edges() {
        let volume: f64 = edge.interactions.iter().map(|i| i.quantity).sum();
        sent[edge.src.index()] += volume;
        received[edge.dst.index()] += volume;
    }
    let argmax = |xs: &[f64], skip: usize| {
        (0..n)
            .filter(|&i| i != skip)
            .max_by(|&a, &b| xs[a].total_cmp(&xs[b]))
            .expect("generated graphs have at least two accounts")
    };
    let source = argmax(&sent, usize::MAX);
    let sink = argmax(&received, source);
    (
        graph.node(NodeId(source as u32)).name.clone(),
        graph.node(NodeId(sink as u32)).name.clone(),
    )
}
