//! The streaming pipeline end to end: a transaction log is consumed in
//! small batches as if it were arriving live, every batch is merged into
//! the graph as a [`tin_graph::GraphDelta`], the PB path tables are patched
//! incrementally, and pattern search runs between batches against the
//! up-to-the-batch state — no snapshot rebuild anywhere.
//!
//! Ingest and apply failures exit nonzero with a message on stderr instead
//! of panicking — this binary doubles as the kill-and-restart smoke target.
//!
//! Run with: `cargo run --release --example live_feed`

use std::io::Write as _;
use temporal_flow::prelude::*;
use tin_datasets::{generate, DatasetKind, DeltaStream, LoaderConfig};
use tin_patterns::{search_pb, PathTables, PatternId, TablesConfig};

fn main() {
    if let Err(e) = run() {
        eprintln!("live_feed error: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    // A "live feed": the Bitcoin-shaped generator's log serialized as CSV,
    // then replayed in batches of 50 records. In production the reader
    // would be a socket or a tailed file — DeltaStream takes any io::Read.
    let full = generate(DatasetKind::Bitcoin, 7);
    let mut csv: Vec<u8> = b"sender,recipient,timestamp,amount\n".to_vec();
    for edge in full.edges() {
        let (src, dst) = (&full.node(edge.src).name, &full.node(edge.dst).name);
        for i in &edge.interactions {
            writeln!(csv, "{src},{dst},{},{}", i.time, i.quantity)?;
        }
    }
    println!(
        "feed: {} records from the {} generator ({} accounts)\n",
        full.interaction_count(),
        DatasetKind::Bitcoin,
        full.node_count()
    );

    let mut stream = DeltaStream::new(csv.as_slice(), &LoaderConfig::default())?;
    let mut graph = TemporalGraph::new();
    let config = TablesConfig::default();
    let mut tables = PathTables::build(&graph, &config);

    // Ingest → append → incremental table update → pattern search, batch by
    // batch. Memory stays bounded by the graph + tables; the log is never
    // materialized.
    let mut batch_no = 0usize;
    let mut groups = 0usize;
    while let Some(delta) = stream.next_delta(50)? {
        let applied = graph.apply(&delta)?;
        let update = tables.apply(&graph, &applied);
        assert!(!update.rebuilt, "small deltas never trigger a rebuild");
        groups += update.refreshed_groups;
        batch_no += 1;
        // Query the live state every 10 batches: 2-hop cycle instances (P2)
        // straight from the incrementally maintained tables.
        if batch_no % 10 == 0 {
            let p2 = search_pb(&graph, &tables, PatternId::P2, 0)
                .ok_or("cycle tables are unavailable for P2")?;
            println!(
                "after batch {batch_no:>3} ({:>5} transfers): {:>4} two-hop cycles, \
                 avg flow {:>7.2}  [{} rows refreshed this batch]",
                graph.interaction_count(),
                p2.instances,
                p2.average_flow,
                update.refreshed_groups,
            );
        }
    }
    println!(
        "\nfinal: {} accounts, {} transfers in {} batches; {} row groups refreshed \
         incrementally across the run",
        graph.node_count(),
        graph.interaction_count(),
        batch_no,
        groups
    );

    // The streamed state is exactly the snapshot state: same graph as the
    // generator's, tables row-identical to a from-scratch build.
    assert_eq!(graph.interaction_count(), full.interaction_count());
    let rebuilt = PathTables::build(&graph, &config);
    assert_eq!(tables.first_row_divergence(&rebuilt), None);
    println!("verified: incremental tables are row-identical to a full rebuild");
    Ok(())
}
