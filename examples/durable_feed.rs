//! The durable streaming pipeline: the live feed from `live_feed`, but every
//! accepted batch is journaled through [`tin_durable::DurableStore`] before
//! the path tables are patched — kill the process at any moment and a
//! restart recovers the exact prefix that reached the disk, row-identical
//! tables included.
//!
//! Three modes:
//!
//! - no arguments — self-contained demo: stream into a temp directory with a
//!   mid-stream snapshot, drop the store, reopen, and verify recovery.
//! - `run <dir>` — stream the generated feed into `<dir>` slowly (a few ms
//!   per batch), snapshotting periodically. Built to be SIGKILLed mid-stream
//!   by the crash smoke in CI.
//! - `recover <dir>` — reopen `<dir>`, print the recovery report, and verify
//!   the recovered tables are row-identical to a from-scratch build over the
//!   recovered graph. Exits nonzero if recovery or verification fails.
//!
//! Run with: `cargo run --release --example durable_feed`

use std::io::Write as _;
use tin_datasets::{generate, DatasetKind, DeltaStream, LoaderConfig};
use tin_durable::{DurableStore, JournalConfig, RecoveryReport};
use tin_patterns::{PathTables, TablesConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let result = match args.get(1).map(String::as_str) {
        None => demo(),
        Some("run") if args.len() == 3 => run_feed(std::path::Path::new(&args[2])),
        Some("recover") if args.len() == 3 => recover(std::path::Path::new(&args[2])),
        _ => {
            eprintln!("usage: durable_feed [run <dir> | recover <dir>]");
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("durable_feed error: {e}");
        std::process::exit(1);
    }
}

/// The generated feed as CSV bytes — deterministic, so every mode sees the
/// same stream.
fn feed_csv() -> Result<Vec<u8>, Box<dyn std::error::Error>> {
    let full = generate(DatasetKind::Bitcoin, 7);
    let mut csv: Vec<u8> = b"sender,recipient,timestamp,amount\n".to_vec();
    for edge in full.edges() {
        let (src, dst) = (&full.node(edge.src).name, &full.node(edge.dst).name);
        for i in &edge.interactions {
            writeln!(csv, "{src},{dst},{},{}", i.time, i.quantity)?;
        }
    }
    Ok(csv)
}

fn describe(report: &RecoveryReport) {
    println!(
        "recovery: {:?}, {} frames durable ({} replayed from the journal){}",
        report.source,
        report.frames,
        report.replayed,
        if report.torn_tail.is_some() {
            " — torn tail dropped"
        } else {
            ""
        }
    );
    for d in &report.discarded {
        println!("  discarded: {d}");
    }
}

/// `run <dir>`: stream slowly, snapshot periodically, be killable.
fn run_feed(dir: &std::path::Path) -> Result<(), Box<dyn std::error::Error>> {
    let csv = feed_csv()?;
    let (mut store, report) =
        DurableStore::open(dir, TablesConfig::default(), JournalConfig::default())?;
    describe(&report);
    if store.frames() > 0 {
        println!(
            "directory already holds {} frames; nothing to do",
            store.frames()
        );
        return Ok(());
    }
    let mut stream = DeltaStream::new(csv.as_slice(), &LoaderConfig::default())?;
    let mut batch_no = 0u64;
    while let Some(delta) = stream.next_delta(10)? {
        store.apply(&delta)?;
        batch_no += 1;
        if batch_no % 40 == 0 {
            store.snapshot()?;
            println!(
                "batch {batch_no}: snapshot at {:?} ({} transfers live)",
                store.position(),
                store.graph().interaction_count()
            );
        }
        // Slow the stream down so a kill reliably lands mid-run.
        std::thread::sleep(std::time::Duration::from_millis(3));
    }
    println!(
        "feed complete: {} batches, {} transfers, {} accounts",
        batch_no,
        store.graph().interaction_count(),
        store.graph().node_count()
    );
    Ok(())
}

/// `recover <dir>`: reopen and verify the recovered state is coherent.
fn recover(dir: &std::path::Path) -> Result<(), Box<dyn std::error::Error>> {
    let (store, report) =
        DurableStore::open(dir, TablesConfig::default(), JournalConfig::default())?;
    describe(&report);
    store.graph().validate()?;
    let rebuilt = PathTables::build(store.graph(), &TablesConfig::default());
    if let Some(divergence) = store.tables().first_row_divergence(&rebuilt) {
        return Err(
            format!("recovered tables diverge from a from-scratch build: {divergence}").into(),
        );
    }
    println!(
        "verified: {} transfers across {} accounts recovered; tables row-identical \
         to a from-scratch build",
        store.graph().interaction_count(),
        store.graph().node_count()
    );
    Ok(())
}

/// No arguments: stream → snapshot → drop → reopen → verify, in a temp dir.
fn demo() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("tin-durable-feed-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let csv = feed_csv()?;
    {
        let (mut store, _) =
            DurableStore::open(&dir, TablesConfig::default(), JournalConfig::default())?;
        let mut stream = DeltaStream::new(csv.as_slice(), &LoaderConfig::default())?;
        let mut batch_no = 0u64;
        while let Some(delta) = stream.next_delta(50)? {
            store.apply(&delta)?;
            batch_no += 1;
            if batch_no == 20 {
                let manifest = store.snapshot()?;
                println!(
                    "batch {batch_no}: snapshot committed via {}",
                    manifest.file_name().unwrap_or_default().to_string_lossy()
                );
            }
        }
        println!(
            "streamed {} batches durably: {} transfers, {} accounts, journal at {:?}",
            batch_no,
            store.graph().interaction_count(),
            store.graph().node_count(),
            store.position()
        );
        // The store drops here — exactly what a crash looks like to the
        // directory, minus the torn tail.
    }
    recover(&dir)?;
    std::fs::remove_dir_all(&dir)?;
    println!("demo complete (temp directory removed)");
    Ok(())
}
