//! CSV ingestion end to end: a real(-shaped) transaction log on disk is
//! streamed into a temporal interaction network, seed-centred subgraphs are
//! extracted, round-trip flows computed, and the flow-pattern search run —
//! the full pipeline of the paper, starting from a file instead of a
//! generator.
//!
//! Run with: `cargo run --release --example ingest_csv`

use temporal_flow::prelude::*;
use tin_datasets::{extract_seed_subgraphs, load_path, ExtractConfig, LoaderConfig, ParseMode};
use tin_patterns::{search_gb, search_pb, PathTables, PatternId, TablesConfig};

fn fixture(name: &str) -> String {
    format!(
        "{}/crates/datasets/fixtures/{name}",
        env!("CARGO_MANIFEST_DIR")
    )
}

fn main() {
    // 1. Stream the log. Lenient mode: real exports contain stray junk, and
    //    this fixture deliberately carries one malformed row.
    let loaded = load_path(
        fixture("transactions.csv"),
        &LoaderConfig {
            mode: ParseMode::Lenient,
            ..LoaderConfig::default()
        },
    )
    .expect("fixture loads");
    println!("loaded transactions.csv: {}", loaded.report);
    let graph = &loaded.graph;
    println!(
        "network: {} accounts, {} edges, {} transfers, {:.2} units total\n",
        graph.node_count(),
        graph.edge_count(),
        graph.interaction_count(),
        graph.total_quantity()
    );

    // Strict mode refuses the same file loudly instead of skipping...
    let strict_err = load_path(fixture("transactions.csv"), &LoaderConfig::default())
        .expect_err("strict mode rejects the malformed row");
    println!("strict mode would say: {strict_err}");
    // ...and a file with inconsistent delimiters never loads at all.
    let mixed_err = load_path(fixture("mixed_delimiters.csv"), &LoaderConfig::default())
        .expect_err("mixed delimiters are rejected");
    println!("mixed delimiters:      {mixed_err}\n");

    // 2. Extract, per account, the subgraph of ≤3-hop round trips and rank
    //    by maximum round-trip flow — exactly as for generated datasets.
    let subgraphs = extract_seed_subgraphs(
        graph,
        &ExtractConfig {
            min_interactions: 2,
            ..ExtractConfig::default()
        },
    );
    let mut rankings: Vec<(NodeId, f64, usize)> = subgraphs
        .iter()
        .map(|sub| {
            let flow = compute_flow(&sub.graph, sub.source, sub.sink, FlowMethod::PreSim)
                .expect("extracted subgraphs are valid flow DAGs")
                .flow;
            (sub.seed, flow, sub.graph.interaction_count())
        })
        .collect();
    rankings.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    println!(
        "{} accounts have round-trip activity within 3 hops:",
        rankings.len()
    );
    println!(
        "{:<14} {:>16} {:>12}",
        "account", "round-trip flow", "#transfers"
    );
    for (seed, flow, interactions) in &rankings {
        let name = &graph.node(*seed).name;
        println!("{name:<14} {flow:>16.2} {interactions:>12}");
    }

    // 3. Flow-pattern search over the loaded network, graph browsing vs
    //    precomputed path tables.
    let tables = PathTables::build(graph, &TablesConfig::default());
    println!(
        "\npath tables: {} rows (L2 {}, C2 {}, L3 {})",
        tables.row_count(),
        tables.l2.len(),
        tables.c2.len(),
        tables.l3.len()
    );
    println!("{:<8} {:>10} {:>12}", "pattern", "instances", "avg flow");
    for id in PatternId::ALL {
        let gb = search_gb(graph, id, 0);
        let pb = search_pb(graph, &tables, id, 0).expect("all tables built");
        assert_eq!(
            gb.instances, pb.instances,
            "GB and PB must agree on a loaded graph"
        );
        println!(
            "{:<8} {:>10} {:>12.2}",
            gb.pattern.to_string(),
            gb.instances,
            gb.average_flow
        );
    }
    println!("\n(GB and PB agree on every pattern — file-loaded graphs are first-class)");
}
