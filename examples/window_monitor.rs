//! A bounded-history deployment of the streaming pipeline: the transaction
//! log is replayed through a sliding time window, so every batch both
//! appends fresh transfers and evicts the ones that fell out of the window.
//! The graph stays proportional to the window (edges with no surviving
//! interaction are tombstoned), the PB path tables absorb additions and
//! removals symmetrically, and pattern search between batches only ever
//! sees the live window — no snapshot rebuild anywhere.
//!
//! Ingest and apply failures exit nonzero with a message on stderr
//! instead of panicking.
//!
//! Run with: `cargo run --release --example window_monitor`

use std::io::Write as _;
use temporal_flow::prelude::*;
use tin_datasets::{generate, DatasetKind, DeltaStream, LoaderConfig};
use tin_patterns::{search_pb, PathTables, PatternId, TablesConfig};

fn main() {
    if let Err(e) = run() {
        eprintln!("window_monitor error: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    // The "live feed": the Bitcoin-shaped generator's log serialized as
    // CSV, replayed in batches of 50 records through a window covering a
    // third of the log's time span — old transfers expire as new ones land.
    let full = generate(DatasetKind::Bitcoin, 7);
    let mut csv: Vec<u8> = b"sender,recipient,timestamp,amount\n".to_vec();
    for edge in full.edges() {
        let (src, dst) = (&full.node(edge.src).name, &full.node(edge.dst).name);
        for i in &edge.interactions {
            writeln!(csv, "{src},{dst},{},{}", i.time, i.quantity)?;
        }
    }
    let span = full.max_time().unwrap_or(0) - full.min_time().unwrap_or(0);
    let window = (span / 3).max(1);
    println!(
        "feed: {} records from the {} generator ({} accounts), window = {} of a {}-tick span\n",
        full.interaction_count(),
        DatasetKind::Bitcoin,
        full.node_count(),
        window,
        span
    );

    let mut stream = DeltaStream::new(csv.as_slice(), &LoaderConfig::default())?.window(window)?;
    let mut graph = TemporalGraph::new();
    let config = TablesConfig::default();
    let mut tables = PathTables::build(&graph, &config);

    // Ingest → merge + evict → incremental table update → pattern search,
    // batch by batch. Memory stays bounded by the *window*, not the log.
    let mut batch_no = 0usize;
    let mut evicted = 0usize;
    let mut tombstoned = 0usize;
    while let Some(delta) = stream.next_delta(50)? {
        let applied = graph.apply(&delta)?;
        let update = tables.apply(&graph, &applied);
        assert!(
            !update.rebuilt,
            "small windowed deltas never trigger a rebuild"
        );
        evicted += applied.removed_interactions;
        tombstoned += applied.removed_edges.len();
        batch_no += 1;
        // Query the live window every 10 batches: 2-hop cycle instances
        // (P2) straight from the incrementally maintained tables.
        if batch_no % 10 == 0 {
            let p2 = search_pb(&graph, &tables, PatternId::P2, 0)
                .ok_or("cycle tables are unavailable for P2")?;
            println!(
                "after batch {batch_no:>3}: {:>5} live transfers (frontier {:>4}), \
                 {:>4} two-hop cycles in the window  [{} evicted so far]",
                graph.interaction_count(),
                graph.frontier().unwrap_or(0),
                p2.instances,
                evicted,
            );
        }
    }
    println!(
        "\nfinal: {} live of {} ingested transfers ({} evicted, {} edges tombstoned) \
         across {} batches; {} of {} accounts still active",
        graph.interaction_count(),
        full.interaction_count(),
        evicted,
        tombstoned,
        batch_no,
        graph.live_node_count(),
        graph.node_count(),
    );

    // Every record is accounted for, nothing live predates the frontier,
    // and the tables are exactly what a from-scratch build over the
    // surviving window produces.
    assert_eq!(
        evicted + graph.interaction_count(),
        full.interaction_count()
    );
    let frontier = graph.frontier().expect("a windowed run sets the frontier");
    assert!(graph.min_time().is_none_or(|t| t >= frontier));
    graph.validate()?;
    let rebuilt = PathTables::build(&graph, &config);
    assert_eq!(tables.first_row_divergence(&rebuilt), None);
    println!("verified: tables are row-identical to a rebuild of the surviving window");
    Ok(())
}
