//! Flow pattern search: graph browsing vs precomputation on a Prosper-like
//! loan network (Section 5 / Tables 9–11 of the paper).
//!
//! Run with: `cargo run --release --example pattern_search`

use std::time::Instant;
use temporal_flow::prelude::*;
use tin_datasets::generate_prosper;
use tin_patterns::{
    relaxed_search_gb, relaxed_search_pb, search_gb, search_pb, PathTables, PatternId,
    RelaxedPattern, TablesConfig,
};

fn main() {
    let config = ProsperConfig {
        seed: 99,
        ..ProsperConfig::default()
    }
    .scaled(0.3);
    let graph = generate_prosper(&config);
    println!(
        "loan network: {} members, {} edges, {} loans\n",
        graph.node_count(),
        graph.edge_count(),
        graph.interaction_count()
    );

    // Offline precomputation (the PB side's one-time cost).
    let start = Instant::now();
    let tables = PathTables::build(&graph, &TablesConfig::default());
    println!(
        "precomputed {} path rows (L2 {}, L3 {}, C2 {}) in {:.1?}\n",
        tables.row_count(),
        tables.l2.len(),
        tables.l3.len(),
        tables.c2.len(),
        start.elapsed()
    );

    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>12} {:>8}",
        "pattern", "instances", "avg flow", "GB time", "PB time", "speedup"
    );
    let limit = 5_000;
    for id in PatternId::ALL {
        let gb = search_gb(&graph, id, limit);
        let pb = search_pb(&graph, &tables, id, limit).expect("all tables built for Prosper");
        let speedup = gb.elapsed.as_secs_f64() / pb.elapsed.as_secs_f64().max(1e-9);
        println!(
            "{:<8} {:>10} {:>12.2} {:>12.1?} {:>12.1?} {:>7.1}x",
            format!("{}{}", gb.pattern, if gb.truncated { "*" } else { "" }),
            gb.instances,
            gb.average_flow,
            gb.elapsed,
            pb.elapsed,
            speedup
        );
    }
    for rp in [
        RelaxedPattern::ParallelTwoHopChains { min_branches: 1 },
        RelaxedPattern::ParallelTwoHopCycles { min_branches: 2 },
        RelaxedPattern::ParallelThreeHopCycles { min_branches: 2 },
    ] {
        let gb = relaxed_search_gb(&graph, rp);
        let pb = relaxed_search_pb(&graph, &tables, rp).expect("tables built");
        let speedup = gb.elapsed.as_secs_f64() / pb.elapsed.as_secs_f64().max(1e-9);
        println!(
            "{:<8} {:>10} {:>12.2} {:>12.1?} {:>12.1?} {:>7.1}x",
            gb.pattern, gb.instances, gb.average_flow, gb.elapsed, pb.elapsed, speedup
        );
    }
    println!("\n(* = enumeration stopped at {limit} instances)");
}
