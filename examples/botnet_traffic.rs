//! Byte-flow analysis of a botnet traffic capture (CTU-13-like).
//!
//! For a network operator the question is "how many bytes could this bot
//! have exfiltrated to that server, given the observed packet timeline?" —
//! exactly the source-to-sink flow of the paper applied to a traffic
//! network. The example also shows the relaxed pattern RP2 (all
//! request/response loops through a host) as a quick triage query.
//!
//! Run with: `cargo run --release --example botnet_traffic`

use temporal_flow::prelude::*;
use tin_datasets::generate_ctu13;
use tin_graph::augment_with_synthetic_endpoints;
use tin_graph::view::induced_subgraph;
use tin_patterns::{relaxed_search_pb, PathTables, RelaxedPattern, TablesConfig};

fn main() {
    let config = Ctu13Config {
        seed: 7,
        ..Ctu13Config::default()
    }
    .scaled(0.3);
    let graph = generate_ctu13(&config);
    println!(
        "traffic capture: {} hosts, {} flows, {} packets",
        graph.node_count(),
        graph.edge_count(),
        graph.interaction_count()
    );

    // --- How much could bot X have pushed to server 0? --------------------
    // Take the 2-hop neighbourhood of the busiest server, add synthetic
    // endpoints if needed, and compute the maximum byte flow bot -> server.
    let server = graph
        .node_by_name("srv0")
        .expect("generator always creates srv0");
    let bots: Vec<NodeId> = graph.in_neighbors(server).take(5).collect();
    println!("\nmaximum bytes that could reach srv0 from its five chattiest peers:");
    for bot in bots {
        // Build the local subgraph spanned by both hosts' direct contacts.
        let mut vertices: Vec<NodeId> = vec![bot, server];
        vertices.extend(graph.out_neighbors(bot));
        vertices.extend(graph.in_neighbors(server));
        let local = induced_subgraph(&graph, &vertices);
        let sub_bot = local.to_sub(bot).unwrap();
        let sub_server = local.to_sub(server).unwrap();
        // The local subgraph may be cyclic (request/response); fall back to
        // the greedy bound when it is not a DAG.
        match compute_flow(&local.graph, sub_bot, sub_server, FlowMethod::PreSim) {
            Ok(result) => println!(
                "  {:>8} -> srv0 : {:>12.0} bytes (maximum), class {:?}",
                graph.node(bot).name,
                result.flow,
                result.class.unwrap()
            ),
            Err(_) => {
                let greedy = greedy_flow(&local.graph, sub_bot, sub_server).flow;
                println!(
                    "  {:>8} -> srv0 : {:>12.0} bytes (greedy bound; local subgraph is cyclic)",
                    graph.node(bot).name,
                    greedy
                );
            }
        }
    }

    // --- Demonstrate synthetic endpoints on a multi-source cut ------------
    let sample: Vec<NodeId> = graph.node_ids().take(40).collect();
    let neighbourhood = induced_subgraph(&graph, &sample);
    if let Ok(aug) = augment_with_synthetic_endpoints(&neighbourhood.graph) {
        if let Ok(result) = compute_flow(&aug.graph, aug.source, aug.sink, FlowMethod::PreSim) {
            println!(
                "\nmaximum flow through a 40-host slice (synthetic source/sink added: {}/{}) = {:.0} bytes",
                aug.added_source, aug.added_sink, result.flow
            );
        }
    }

    // --- Relaxed pattern triage: hosts with many request/response loops ---
    let tables = PathTables::build(
        &graph,
        &TablesConfig {
            build_c2: false,
            ..TablesConfig::default()
        },
    );
    let rp2 = relaxed_search_pb(
        &graph,
        &tables,
        RelaxedPattern::ParallelTwoHopCycles { min_branches: 5 },
    )
    .expect("cycle tables built");
    println!(
        "\nRP2 triage: {} hosts have ≥5 request/response loops; average looped volume {:.0} bytes",
        rp2.instances, rp2.average_flow
    );
}
